"""HTTP-level service tests over real sockets: endpoint behavior,
lifecycle, and fault injection (disconnects, cancels, rate limits)."""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import threading

import pytest

from tests.service.conftest import tiny_study_payload


def wait_done(service, job_id, timeout=120.0) -> str:
    job = service.manager.get(job_id)
    assert job is not None
    state = job.wait(timeout)
    assert state is not None
    return state


class TestBasicEndpoints:
    def test_healthz(self, client):
        status, headers, body = client.get("/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_path_is_404(self, client):
        status, _, body = client.get("/nope")
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_wrong_method_is_405_with_allow(self, client):
        status, headers, body = client.delete("/healthz")
        assert status == 405
        assert headers["Allow"] == "GET"

    def test_missing_study_is_404_everywhere(self, client):
        for path in (
            "/studies/job-999999",
            "/studies/job-999999/result",
            "/studies/job-999999/stream",
        ):
            assert client.get(path)[0] == 404
        assert client.post_json("/studies/job-999999/cancel")[0] == 404
        assert client.post_json("/studies/job-999999/resume")[0] == 404
        assert client.delete("/studies/job-999999")[0] == 404

    def test_bad_json_body_is_400(self, client):
        status, _, body = client.request("POST", "/studies", body=b"{nope")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_unknown_config_key_is_400_listing_valid_fields(self, client):
        status, _, body = client.submit(tiny_study_payload(no_such_knob=1))
        assert status == 400
        message = body["error"]
        assert "no_such_knob" in message
        assert "valid fields" in message

    def test_invalid_config_value_is_400(self, client):
        status, _, body = client.submit(tiny_study_payload(rounds=0))
        assert status == 400
        assert "rounds" in body["error"]


class TestStudyLifecycle:
    def test_submit_run_status_result(self, service, client):
        status, headers, body = client.submit(tiny_study_payload())
        assert status == 200
        assert headers["X-Cache"] == "miss"
        assert headers["X-Request-ID"].startswith("req-")
        job_id = body["id"]
        assert body["status_url"] == f"/studies/{job_id}"
        assert wait_done(service, job_id) == "done"

        status, _, snapshot = client.get(f"/studies/{job_id}")
        snapshot = json.loads(snapshot)
        assert status == 200
        assert snapshot["state"] == "done"
        assert snapshot["rounds_completed"] == 2
        assert snapshot["rounds_total"] == 2
        assert snapshot["error"] is None

        status, headers, result = client.get(f"/studies/{job_id}/result")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        parsed = json.loads(result)
        assert parsed["config_name"] == "svc-test"
        assert len(parsed["rounds"]) == 2

    def test_list_studies(self, service, client):
        _, _, first = client.submit(tiny_study_payload(seed=11))
        _, _, second = client.submit(tiny_study_payload(seed=12))
        wait_done(service, first["id"])
        wait_done(service, second["id"])
        status, _, body = client.get("/studies")
        listed = {s["id"] for s in json.loads(body)["studies"]}
        assert listed == {first["id"], second["id"]}

    def test_result_before_done_is_409(self, make_service, make_client):
        gate = threading.Event()
        release = threading.Event()

        def hook(job, record):
            gate.set()
            assert release.wait(60)

        service = make_service(round_hook=hook)
        client = make_client(service)
        try:
            _, _, body = client.submit(tiny_study_payload())
            assert gate.wait(60)
            status, _, result = client.get(f"/studies/{body['id']}/result")
            assert status == 409
            assert json.loads(result)["state"] in ("queued", "running")
        finally:
            release.set()
        wait_done(service, body["id"])

    def test_late_subscriber_replays_full_stream(self, service, client):
        _, _, body = client.submit(tiny_study_payload())
        assert wait_done(service, body["id"]) == "done"
        # The job finished before we subscribed: the stream must replay
        # every frame from the buffer, then end.
        events = client.stream_events(f"/studies/{body['id']}/stream")
        rounds = [e for e in events if e.event == "round"]
        assert [e.id for e in rounds] == ["0", "1"]
        assert events[-1].event == "end"
        assert json.loads(events[-1].data) == {"rounds": 2, "status": "done"}

    def test_delete_removes_study_and_cache_entry(self, service, client):
        payload = tiny_study_payload()
        _, _, body = client.submit(payload)
        wait_done(service, body["id"])
        status, _, _ = client.delete(f"/studies/{body['id']}")
        assert status == 204
        assert client.get(f"/studies/{body['id']}")[0] == 404
        # Resubmission after delete is a fresh run, not a cache hit.
        status, headers, resubmitted = client.submit(payload)
        assert headers["X-Cache"] == "miss"
        assert resubmitted["id"] != body["id"]
        wait_done(service, resubmitted["id"])

    def test_duplicate_submission_dedups_to_same_job(self, service, client):
        payload = tiny_study_payload()
        _, first_headers, first = client.submit(payload)
        _, second_headers, second = client.submit(payload)
        assert first["id"] == second["id"]
        assert second_headers["X-Cache"] == "hit"
        wait_done(service, first["id"])
        assert service.manager.builds_performed == 1

    def test_metrics_endpoint_reflects_traffic(self, client):
        client.get("/healthz")
        status, headers, body = client.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode()
        assert (
            'repro_requests_total{method="GET",route="/healthz",status="200"}'
            in text
        )


class TestRateLimiting:
    def test_429_over_http_then_recovery(self, make_service, make_client):
        # Slow refill (one token per 2 s): draining the bucket makes
        # the next request deterministically 429, no timing races.
        service = make_service(rate_capacity=2, rate_refill=0.5)
        client = make_client(service)
        from repro.service.middleware import Request

        assert service.handle(Request("GET", "/studies")).status == 200
        assert service.handle(Request("GET", "/studies")).status == 200
        status, headers, body = client.get("/studies")
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert json.loads(body)["error"] == "rate limited"
        # Operational endpoints stay reachable while saturated.
        assert client.get("/healthz")[0] == 200
        assert client.get("/metrics")[0] == 200

    def test_rejection_leaves_no_job_behind(self, make_service, make_client):
        service = make_service(rate_capacity=1, rate_refill=0.001)
        client = make_client(service)
        assert client.get("/healthz")[0] == 200  # exempt, free
        first = client.submit(tiny_study_payload())
        assert first[0] == 200
        second = client.submit(tiny_study_payload(seed=99))
        assert second[0] == 429
        # The rejected submission never reached the job manager.
        assert len(service.manager.jobs()) == 1
        wait_done(service, first[2]["id"])


class TestFaultInjection:
    def test_client_disconnect_mid_stream(self, make_service, make_client):
        """A subscriber that drops mid-stream must not wedge the job or
        the server; the job finishes and a later subscriber replays all
        frames."""
        first_round = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 0:
                first_round.set()
                assert release.wait(60)

        service = make_service(round_hook=hook)
        client = make_client(service)
        _, _, body = client.submit(tiny_study_payload(rounds=3))
        job_id = body["id"]
        with client.sse(f"/studies/{job_id}/stream") as (resp, events):
            assert resp.status == 200
            assert first_round.wait(60)
            first = next(events)
            assert first.event == "round" and first.id == "0"
            # Context exit closes the socket here — mid-stream, with
            # two rounds still to come.
        release.set()
        assert wait_done(service, job_id) == "done"
        frames = client.round_frames(job_id)
        assert len(frames) == 3
        assert client.get("/healthz")[0] == 200  # server still serving

    def test_cancel_then_resume_over_http(self, make_service, make_client):
        first_round = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 0:
                first_round.set()
                assert release.wait(60)

        service = make_service(round_hook=hook)
        client = make_client(service)
        _, _, body = client.submit(tiny_study_payload(rounds=3))
        job_id = body["id"]
        assert first_round.wait(60)
        status, _, cancel_body = client.post_json(f"/studies/{job_id}/cancel")
        assert status == 202
        release.set()
        job = service.manager.get(job_id)
        assert job.wait(60) == "cancelled"
        snapshot = json.loads(client.get(f"/studies/{job_id}")[2])
        assert snapshot["state"] == "cancelled"
        assert snapshot["rounds_completed"] == 1
        assert snapshot["resumable"] is True
        # The cancelled run checkpointed; resume continues to the end.
        status, _, _ = client.post_json(f"/studies/{job_id}/resume")
        assert status == 202
        assert job.wait(120) == "done"
        assert len(client.round_frames(job_id)) == 3
        # Cancel/resume of terminal jobs is a clean 409, not a crash.
        assert client.post_json(f"/studies/{job_id}/cancel")[0] == 409
        assert client.post_json(f"/studies/{job_id}/resume")[0] == 409

    def test_cancel_while_queued_never_runs(self, make_service, make_client):
        blocker = threading.Event()

        def hook(job, record):
            assert blocker.wait(60)

        service = make_service(round_hook=hook, job_workers=1)
        client = make_client(service)
        _, _, running = client.submit(tiny_study_payload(seed=5))
        _, _, queued = client.submit(tiny_study_payload(seed=6))
        status, _, _ = client.post_json(f"/studies/{queued['id']}/cancel")
        assert status == 202
        blocker.set()
        assert wait_done(service, running["id"]) == "done"
        assert wait_done(service, queued["id"]) == "cancelled"
        # The queued job was cancelled before its simulator was built:
        # only the running job's build is counted, and no frames exist.
        assert service.manager.builds_performed == 1
        assert service.manager.get(queued["id"]).frames == []

    def test_no_leaked_workers_after_faults(self, make_service, make_client):
        """After disconnects and cancels, closing the service leaves no
        child processes behind (serial executors spawn none; the shard
        test below covers /dev/shm)."""
        service = make_service()
        client = make_client(service)
        _, _, body = client.submit(tiny_study_payload())
        wait_done(service, body["id"])
        service.close()
        assert multiprocessing.active_children() == []

    @pytest.mark.skipif(os.cpu_count() < 2, reason="needs >= 2 CPUs")
    def test_sharded_cancel_leaves_no_shm_segments(
        self, make_service, make_client
    ):
        """Cancel a sharded study mid-run: shard worker processes and
        their /dev/shm segment must all be reclaimed."""
        first_round = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 0:
                first_round.set()
                assert release.wait(120)

        shm_dir = "/dev/shm"
        before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else None
        service = make_service(round_hook=hook)
        client = make_client(service)
        payload = tiny_study_payload(
            rounds=3, executor="sharded", n_shards=2, seed=31
        )
        _, _, body = client.submit(payload)
        assert first_round.wait(120)
        assert client.post_json(f"/studies/{body['id']}/cancel")[0] == 202
        release.set()
        job = service.manager.get(body["id"])
        assert job.wait(120) == "cancelled"
        service.close()
        assert multiprocessing.active_children() == []
        if before is not None:
            assert set(os.listdir(shm_dir)) - before == set()


class TestTransportErrorPath:
    def test_pipeline_crash_is_logged_and_answered_with_500(
        self, service, make_client, caplog, monkeypatch
    ):
        """If the whole pipeline raises (not just a handler — the error
        boundary covers those), the transport must answer a JSON 500
        AND leave a structured log line; it used to swallow the
        exception silently."""
        client = make_client(service)

        def broken_handle(request):
            raise RuntimeError("pipeline down")

        monkeypatch.setattr(service, "handle", broken_handle)
        with caplog.at_level(logging.ERROR, logger="repro.service.error"):
            status, _, body = client.get("/healthz")
        assert status == 500
        assert json.loads(body)["error"] == "internal error: RuntimeError"
        lines = [
            json.loads(r.getMessage())
            for r in caplog.records
            if r.name == "repro.service.error"
        ]
        assert {
            "event": "transport_error",
            "method": "GET",
            "path": "/healthz",
            "status": 500,
        } in lines
        assert "pipeline down" in caplog.text  # traceback rides along
