"""SSE framing unit tests: format/parse round-trip fidelity."""

from __future__ import annotations

from repro.service.sse import SSEvent, format_event, parse_sse_stream


def roundtrip(wire: bytes) -> list[SSEvent]:
    text = wire.decode("utf-8")
    return list(parse_sse_stream(line + "\n" for line in text.split("\n")))


class TestFormatEvent:
    def test_full_event_layout(self):
        wire = format_event('{"a":1}', event="round", event_id="3")
        assert wire == b'id: 3\nevent: round\ndata: {"a":1}\n\n'

    def test_data_only(self):
        assert format_event("x") == b"data: x\n\n"

    def test_multiline_data_becomes_multiple_data_lines(self):
        assert format_event("a\nb") == b"data: a\ndata: b\n\n"


class TestParseSSEStream:
    def test_round_trips_formatted_events(self):
        wire = format_event('{"k":1}', event="round", event_id="0")
        wire += format_event("done", event="end")
        events = roundtrip(wire)
        assert [(e.event, e.id, e.data) for e in events] == [
            ("round", "0", '{"k":1}'),
            ("end", None, "done"),
        ]

    def test_multiline_data_joined_with_newline(self):
        events = roundtrip(format_event("a\nb"))
        assert events[0].data == "a\nb"

    def test_comments_and_blank_runs_ignored(self):
        lines = [": keepalive\n", "\n", "\n", "data: x\n", "\n"]
        events = list(parse_sse_stream(lines))
        assert len(events) == 1
        assert events[0].data == "x"

    def test_bytes_lines_accepted(self):
        events = list(parse_sse_stream([b"data: x\r\n", b"\r\n"]))
        assert events[0].data == "x"

    def test_unterminated_final_event_still_yielded(self):
        events = list(parse_sse_stream(["event: end\n", "data: x\n"]))
        assert [(e.event, e.data) for e in events] == [("end", "x")]
