"""Bit-identity contracts of the service layer.

The service is a *view* over the deterministic session layer, so its
outputs must be byte-equal to local computation: the SSE frame
sequence equals ``run_study(...).records`` serialized frame-for-frame
(serial and batched executors, float64), a cache hit replays the miss
byte for byte without a simulator build, and cancel -> resume-from-
checkpoint converges to the same result as an uninterrupted run.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.study import StudyConfig, run_study

from tests.service.conftest import tiny_study_payload


class TestStreamBitIdentity:
    @pytest.mark.parametrize("executor", ["serial", "batched"])
    def test_sse_frames_equal_local_records(
        self, executor, make_service, make_client
    ):
        """Frame-for-frame: what a client streams over the socket is
        exactly what a local run_study produces (float64 arenas)."""
        payload = tiny_study_payload(executor=executor, rounds=3)
        expected = [
            r.to_json() for r in run_study(StudyConfig.from_dict(payload)).rounds
        ]

        service = make_service()
        client = make_client(service)
        _, _, body = client.submit(payload)
        job = service.manager.get(body["id"])
        assert job.wait(120) == "done"
        events = client.stream_events(f"/studies/{body['id']}/stream")
        frames = [e.data for e in events if e.event == "round"]
        assert frames == expected
        # SSE ids are the round indices, in order.
        ids = [int(e.id) for e in events if e.event == "round"]
        assert ids == list(range(len(expected)))

    def test_result_endpoint_equals_local_run_json(
        self, make_service, make_client
    ):
        payload = tiny_study_payload(rounds=3)
        expected = run_study(StudyConfig.from_dict(payload)).to_json()
        service = make_service()
        client = make_client(service)
        _, _, body = client.submit(payload)
        assert service.manager.get(body["id"]).wait(120) == "done"
        _, _, result = client.get(f"/studies/{body['id']}/result")
        assert result.decode("utf-8") == expected


class TestCacheBitIdentity:
    def test_cache_hit_is_byte_identical_with_zero_builds(
        self, make_service, make_client
    ):
        service = make_service()
        client = make_client(service)
        payload = tiny_study_payload()
        status, miss_headers, miss_body = client.request(
            "POST", "/studies", body=json.dumps(payload).encode()
        )
        assert status == 200
        assert miss_headers["X-Cache"] == "miss"
        job_id = json.loads(miss_body)["id"]
        assert service.manager.get(job_id).wait(120) == "done"
        builds = service.manager.builds_performed
        assert builds == 1

        # Same config, different dict ordering and grouped spelling:
        # all three hit the same cache entry, byte for byte, with zero
        # additional simulator builds.
        spellings = [
            payload,
            dict(reversed(list(payload.items()))),
            StudyConfig.from_dict(payload).to_dict(),
        ]
        for spelling in spellings:
            status, headers, body = client.request(
                "POST", "/studies", body=json.dumps(spelling).encode()
            )
            assert status == 200
            assert headers["X-Cache"] == "hit"
            assert body == miss_body
        assert service.manager.builds_performed == builds

        # And the streamed/stored outputs are shared too: one result,
        # one frame buffer, replayable by any number of subscribers.
        first = client.get(f"/studies/{job_id}/result")[2]
        second = client.get(f"/studies/{job_id}/result")[2]
        assert first == second

    def test_dedup_survives_cache_eviction(self, make_service, make_client):
        """Even with the response cache evicted, the job manager dedups
        by hash, so the regenerated response is byte-identical and no
        simulator is built."""
        service = make_service(cache_entries=1)
        client = make_client(service)
        payload = tiny_study_payload(seed=21)
        _, _, miss_body = client.request(
            "POST", "/studies", body=json.dumps(payload).encode()
        )
        assert service.manager.get(json.loads(miss_body)["id"]).wait(120) == "done"
        # Evict by caching a different config.
        other = tiny_study_payload(seed=22)
        _, _, other_resp = client.submit(other)
        assert service.manager.get(other_resp["id"]).wait(120) == "done"
        builds = service.manager.builds_performed
        status, headers, body = client.request(
            "POST", "/studies", body=json.dumps(payload).encode()
        )
        assert headers["X-Cache"] == "miss"  # evicted from the cache...
        assert body == miss_body  # ...but the dedup'd body is identical
        assert service.manager.builds_performed == builds  # and build-free


class TestCancelResumeBitIdentity:
    @pytest.mark.parametrize("executor", ["serial", "batched"])
    def test_cancel_resume_matches_uninterrupted_run(
        self, executor, make_service, make_client
    ):
        """Cancel after round 0, resume from the checkpoint: the final
        result must equal an uninterrupted run bit for bit (the PR 5
        checkpoint gates, exercised end-to-end through HTTP)."""
        payload = tiny_study_payload(executor=executor, rounds=3, seed=7)
        uninterrupted = run_study(StudyConfig.from_dict(payload))
        expected_frames = [r.to_json() for r in uninterrupted.rounds]
        expected_result = uninterrupted.to_json()

        first_round = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 0:
                first_round.set()
                assert release.wait(60)

        service = make_service(round_hook=hook)
        client = make_client(service)
        _, _, body = client.submit(payload)
        job_id = body["id"]
        assert first_round.wait(60)
        assert client.post_json(f"/studies/{job_id}/cancel")[0] == 202
        release.set()
        job = service.manager.get(job_id)
        assert job.wait(60) == "cancelled"
        assert len(job.frames) == 1  # stopped at the round boundary
        assert job.checkpoint_path is not None

        assert client.post_json(f"/studies/{job_id}/resume")[0] == 202
        assert job.wait(120) == "done"
        # Frames: the single pre-cancel frame plus the resumed rounds,
        # identical to the uninterrupted sequence.
        frames = client.round_frames(job_id)
        assert frames == expected_frames
        _, _, result = client.get(f"/studies/{job_id}/result")
        assert result.decode("utf-8") == expected_result
        # Cancel+resume costs exactly one extra build (the resume).
        assert service.manager.builds_performed == 2
