"""In-process service test harness.

Every service test runs against a *real* socket: the fixtures boot a
``ThreadingHTTPServer`` on an ephemeral port in a daemon thread and
hand back a tiny HTTP/SSE client — no mocks of the HTTP layer
anywhere. Factories (``make_service`` / ``make_client``) let tests
customize rate limits, cache size or the job-manager ``round_hook``
(the deterministic way to hold a study mid-run for cancel/disconnect
fault injection); teardown always shuts servers down and closes
services, so leaked worker threads/processes fail loudly elsewhere.
"""

from __future__ import annotations

import http.client
import json
import threading
from contextlib import contextmanager

import pytest

from repro.service import StudyService, make_server, parse_sse_stream


def tiny_study_payload(**overrides) -> dict:
    """A seconds-fast purchase100 config as a JSON-ready dict."""
    base = dict(
        name="svc-test",
        dataset="purchase100",
        n_train=600,
        n_test=150,
        num_features=64,
        n_nodes=6,
        view_size=2,
        protocol="samo",
        rounds=2,
        train_per_node=24,
        test_per_node=12,
        mlp_hidden=[32, 16],
        local_epochs=1,
        batch_size=12,
        max_attack_samples=32,
        max_global_test=64,
        seed=0,
    )
    base.update(overrides)
    return base


class ServiceClient:
    """Minimal stdlib HTTP + SSE client for the test harness."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plain requests -------------------------------------------------

    def request(self, method, path, body=None, headers=None):
        """One request on a fresh connection -> (status, headers, body)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            resp = conn.getresponse()
            return resp.status, dict(resp.getheaders()), resp.read()
        finally:
            conn.close()

    def get(self, path, headers=None):
        return self.request("GET", path, headers=headers)

    def delete(self, path):
        return self.request("DELETE", path)

    def post_json(self, path, payload=None, headers=None):
        body = None if payload is None else json.dumps(payload).encode()
        return self.request("POST", path, body=body, headers=headers)

    def submit(self, payload, headers=None):
        """POST /studies -> (status, headers, parsed body dict)."""
        status, resp_headers, body = self.post_json(
            "/studies", payload, headers=headers
        )
        parsed = json.loads(body) if body else {}
        return status, resp_headers, parsed

    # -- SSE ------------------------------------------------------------

    @contextmanager
    def sse(self, path):
        """Open an event stream; yields (response, event iterator).

        Closing the context closes the socket — mid-stream, if the
        iterator was not exhausted, which is exactly the client-
        disconnect fault the server must survive.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            yield resp, parse_sse_stream(iter(resp.readline, b""))
        finally:
            conn.close()

    def stream_events(self, path):
        """Collect every event of a stream until the server ends it."""
        with self.sse(path) as (resp, events):
            assert resp.status == 200, resp.status
            return list(events)

    def round_frames(self, job_id):
        """The data payloads of all ``round`` events for one job."""
        return [
            e.data
            for e in self.stream_events(f"/studies/{job_id}/stream")
            if e.event == "round"
        ]


@pytest.fixture
def make_service(tmp_path):
    """Factory for :class:`StudyService` instances (auto-closed).

    Rate limits default high so functional tests never trip the
    limiter; rate-limiting tests pass their own capacity/refill.
    """
    created: list[StudyService] = []

    def factory(**kwargs) -> StudyService:
        kwargs.setdefault("rate_capacity", 10_000)
        kwargs.setdefault("rate_refill", 10_000.0)
        kwargs.setdefault("checkpoint_dir", tmp_path / "checkpoints")
        service = StudyService(**kwargs)
        created.append(service)
        return service

    yield factory
    for service in created:
        service.close()


@pytest.fixture
def make_client(make_service):
    """Factory: boot a server for a service, return a ServiceClient."""
    servers = []

    def factory(service: StudyService | None = None) -> ServiceClient:
        if service is None:
            service = make_service()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        host, port = server.server_address
        return ServiceClient(host, port)

    yield factory
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture
def service(make_service) -> StudyService:
    return make_service()


@pytest.fixture
def client(service, make_client) -> ServiceClient:
    return make_client(service)
