"""Service-level telemetry: one scrape shows HTTP *and* engine series,
fallback counters surface in status JSON and /metrics, the request id
rides into job logs and spans as the trace id, and instrumented
results stay byte-identical to an uninstrumented run.
"""

from __future__ import annotations

import json
import logging

from repro.core.study import StudyConfig, run_study
from repro.telemetry import Telemetry

from tests.service.conftest import tiny_study_payload


def _submit_and_wait(service, client, payload, headers=None):
    status, _, body = client.submit(payload, headers=headers)
    assert status in (200, 201), body
    job_id = body["id"]
    assert service.manager.get(job_id).wait(timeout=120.0) == "done"
    return job_id


class TestMetricsExposition:
    def test_scrape_merges_http_and_engine_series(self, service, client):
        _submit_and_wait(service, client, tiny_study_payload())
        status, headers, body = client.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        # HTTP middleware families...
        assert "repro_requests_total" in text
        assert "repro_request_latency_ms_count" in text
        # ...and the engine registry in the same scrape.
        assert 'repro_engine_phase_ms_count{phase="train"}' in text
        assert 'repro_engine_phase_ms_count{phase="observe"}' in text
        assert "repro_study_round_ms_count" in text
        assert 'repro_executor_tasks_total{executor=' in text

    def test_sharded_study_ships_shard_series_to_scrape(
        self, service, client
    ):
        _submit_and_wait(
            service,
            client,
            tiny_study_payload(executor="sharded", n_shards=2),
        )
        text = client.get("/metrics")[2].decode("utf-8")
        assert "repro_shard_tasks_total" in text
        assert "repro_shard_train_ms" in text

    def test_fallback_counters_reach_metrics_and_status(
        self, service, client
    ):
        # train_batch=-1 forces every row off the blocked fast path,
        # so the executor's fallback tallies are guaranteed non-empty.
        payload = tiny_study_payload(executor="batched", train_batch=-1)
        job_id = _submit_and_wait(service, client, payload)
        text = client.get("/metrics")[2].decode("utf-8")
        assert 'repro_engine_fallback_total{reason="forced_per_row"}' in text

        status, _, body = client.get(f"/studies/{job_id}")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["fallback_counts"].get("forced_per_row", 0) > 0

    def test_fast_path_study_reports_no_fallbacks(self, service, client):
        job_id = _submit_and_wait(
            service, client, tiny_study_payload(executor="batched")
        )
        snapshot = json.loads(client.get(f"/studies/{job_id}")[2])
        assert snapshot["fallback_counts"] == {}


class TestTraceIds:
    def test_request_id_becomes_trace_id_in_job_logs(
        self, service, client, caplog
    ):
        with caplog.at_level(logging.INFO, logger="repro.service.jobs"):
            _submit_and_wait(
                service,
                client,
                tiny_study_payload(seed=11),
                headers={"X-Request-ID": "trace-me-123"},
            )
        events = [
            json.loads(r.message)
            for r in caplog.records
            if r.name == "repro.service.jobs"
        ]
        assert events, "no job log events captured"
        traced = [e for e in events if e.get("trace_id") == "trace-me-123"]
        assert {e["event"] for e in traced} >= {"job_submitted", "job_done"}

    def test_job_spans_carry_the_request_id(self, service, client):
        _submit_and_wait(
            service,
            client,
            tiny_study_payload(seed=12),
            headers={"X-Request-ID": "req-span-7"},
        )
        spans = service.telemetry.tracer.spans()
        job_spans = [s for s in spans if s.name == "job.execute"]
        assert job_spans
        assert job_spans[-1].trace_id == "req-span-7"
        # The study's round spans nest under the job span and share
        # the trace id (set per worker thread).
        rounds = [
            s for s in spans
            if s.name == "study.round" and s.trace_id == "req-span-7"
        ]
        assert rounds
        assert all(s.parent_id == job_spans[-1].span_id for s in rounds)


class TestResultIdentity:
    def test_service_result_bytes_match_plain_run_study(
        self, service, client
    ):
        # The service runs with telemetry enabled but annotation off:
        # its result bytes must equal an uninstrumented local run.
        payload = tiny_study_payload(seed=13)
        job_id = _submit_and_wait(service, client, payload)
        status, _, body = client.get(f"/studies/{job_id}/result")
        assert status == 200
        expected = run_study(StudyConfig.from_dict(payload))
        assert body.decode("utf-8") == expected.to_json()
        assert service.telemetry.enabled
        assert not service.telemetry.annotate_results

    def test_explicit_disabled_telemetry_is_honored(self, make_service):
        service = make_service(telemetry=Telemetry.disabled())
        assert not service.telemetry.enabled
        assert service.telemetry.registry.render() == ""
