"""Tests for the RDP accountant against known reference values."""

import numpy as np
import pytest

from repro.privacy import (
    DEFAULT_ALPHAS,
    RDPAccountant,
    calibrate_sigma,
    rdp_subsampled_gaussian,
    rdp_to_epsilon,
)


class TestRDPSubsampledGaussian:
    def test_full_batch_matches_gaussian_closed_form(self):
        sigma = 2.0
        rdp = rdp_subsampled_gaussian(1.0, sigma, alphas=(2.0, 4.0, 8.0))
        np.testing.assert_allclose(
            rdp, [a / (2 * sigma**2) for a in (2.0, 4.0, 8.0)]
        )

    def test_zero_sampling_rate_is_free(self):
        rdp = rdp_subsampled_gaussian(0.0, 1.0, alphas=(2.0, 3.0))
        np.testing.assert_array_equal(rdp, 0.0)

    def test_subsampling_amplifies_privacy(self):
        """q < 1 gives strictly less RDP than the full-batch mechanism."""
        full = rdp_subsampled_gaussian(1.0, 1.0, alphas=(4.0,))
        sub = rdp_subsampled_gaussian(0.01, 1.0, alphas=(4.0,))
        assert sub[0] < full[0]

    def test_monotone_in_q(self):
        small = rdp_subsampled_gaussian(0.01, 1.0, alphas=(8.0,))
        large = rdp_subsampled_gaussian(0.5, 1.0, alphas=(8.0,))
        assert small[0] < large[0]

    def test_monotone_in_sigma(self):
        noisy = rdp_subsampled_gaussian(0.1, 4.0, alphas=(8.0,))
        quiet = rdp_subsampled_gaussian(0.1, 0.5, alphas=(8.0,))
        assert noisy[0] < quiet[0]

    def test_nonnegative_across_grid(self):
        rdp = rdp_subsampled_gaussian(0.05, 1.2)
        assert np.all(rdp >= 0)
        assert np.all(np.isfinite(rdp))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(1.5, 1.0)
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(0.5, 0.0)
        with pytest.raises(ValueError):
            rdp_subsampled_gaussian(0.5, 1.0, alphas=(0.5,))


class TestConversion:
    def test_known_opacus_ballpark(self):
        """q=0.01, sigma=1.0, 1000 steps, delta=1e-5 gives eps close to
        2.0 with RDP accounting (Opacus reference ~1.9-2.2)."""
        acct = RDPAccountant()
        acct.step(0.01, 1.0, 1000)
        eps = acct.get_epsilon(1e-5)
        assert 1.5 < eps < 2.6

    def test_gaussian_closed_form_ballpark(self):
        """Single full-batch Gaussian, sigma=4: RDP conversion should
        land near the classical analytic bound region (eps ~ 1-2 for
        delta=1e-5)."""
        acct = RDPAccountant()
        acct.step(1.0, 4.0, 1)
        eps = acct.get_epsilon(1e-5)
        assert 0.5 < eps < 3.0

    def test_epsilon_increases_with_steps(self):
        a, b = RDPAccountant(), RDPAccountant()
        a.step(0.1, 1.0, 10)
        b.step(0.1, 1.0, 100)
        assert b.get_epsilon(1e-5) > a.get_epsilon(1e-5)

    def test_epsilon_decreases_with_sigma(self):
        a, b = RDPAccountant(), RDPAccountant()
        a.step(0.1, 0.8, 50)
        b.step(0.1, 3.0, 50)
        assert b.get_epsilon(1e-5) < a.get_epsilon(1e-5)

    def test_composition_is_additive(self):
        """Two separate step() calls equal one call with summed steps."""
        a = RDPAccountant()
        a.step(0.05, 1.1, 30)
        a.step(0.05, 1.1, 20)
        b = RDPAccountant()
        b.step(0.05, 1.1, 50)
        assert a.get_epsilon(1e-5) == pytest.approx(b.get_epsilon(1e-5))

    def test_epsilon_nonnegative(self):
        acct = RDPAccountant()
        acct.step(0.001, 100.0, 1)
        assert acct.get_epsilon(1e-5) >= 0.0

    def test_best_alpha_reported(self):
        acct = RDPAccountant()
        acct.step(0.01, 1.0, 100)
        eps, alpha = acct.get_epsilon_and_alpha(1e-5)
        assert alpha in DEFAULT_ALPHAS
        assert eps > 0

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            rdp_to_epsilon(np.zeros(len(DEFAULT_ALPHAS)), 0.0)

    def test_zero_steps_noop(self):
        acct = RDPAccountant()
        acct.step(0.1, 1.0, 0)
        assert acct.history == []

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            RDPAccountant().step(0.1, 1.0, -1)


class TestCalibration:
    @pytest.mark.parametrize("target", [10.0, 25.0, 50.0])
    def test_calibrated_sigma_achieves_target(self, target):
        sigma = calibrate_sigma(target, 1e-5, q=0.1, steps=100)
        acct = RDPAccountant()
        acct.step(0.1, sigma, 100)
        eps = acct.get_epsilon(1e-5)
        assert eps <= target
        assert eps >= target * 0.9  # not overly conservative

    def test_smaller_epsilon_needs_more_noise(self):
        tight = calibrate_sigma(5.0, 1e-5, q=0.1, steps=100)
        loose = calibrate_sigma(50.0, 1e-5, q=0.1, steps=100)
        assert tight > loose

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            calibrate_sigma(0.0, 1e-5, q=0.1, steps=10)

    def test_rejects_unreachable_target(self):
        with pytest.raises(ValueError):
            calibrate_sigma(1e-6, 1e-5, q=1.0, steps=10_000, sigma_max=5.0)
