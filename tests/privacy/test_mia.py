"""Tests for the MPE membership inference attack and its metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.privacy import (
    AttackData,
    build_attack_data,
    mia_accuracy,
    mia_report,
    mpe_scores,
    prediction_entropy,
    roc_curve,
    tpr_at_fpr,
)


def uniform_probs(n, c):
    return np.full((n, c), 1.0 / c)


def confident_probs(n, c, label, confidence=0.99):
    probs = np.full((n, c), (1.0 - confidence) / (c - 1))
    probs[:, label] = confidence
    return probs


class TestMPEScores:
    def test_confident_correct_has_low_score(self):
        c = 5
        confident = mpe_scores(confident_probs(1, c, 2), np.array([2]))
        uniform = mpe_scores(uniform_probs(1, c), np.array([2]))
        assert confident[0] < uniform[0]

    def test_confident_wrong_has_high_score(self):
        c = 5
        wrong = mpe_scores(confident_probs(1, c, 0), np.array([2]))
        uniform = mpe_scores(uniform_probs(1, c), np.array([2]))
        assert wrong[0] > uniform[0]

    def test_nonnegative(self, rng):
        probs = rng.dirichlet(np.ones(8), size=50)
        labels = rng.integers(0, 8, 50)
        assert np.all(mpe_scores(probs, labels) >= 0)

    def test_matches_equation3_naive_implementation(self, rng):
        """Vectorized scores equal a direct transcription of Eq. (3)."""
        probs = rng.dirichlet(np.ones(6), size=20)
        labels = rng.integers(0, 6, 20)
        fast = mpe_scores(probs, labels)
        eps = 1e-12
        for i in range(20):
            p = np.clip(probs[i], eps, 1 - eps)
            y = labels[i]
            value = -(1 - p[y]) * np.log(p[y])
            for yp in range(6):
                if yp != y:
                    value -= p[yp] * np.log(1 - p[yp])
            assert fast[i] == pytest.approx(value, rel=1e-9)

    def test_handles_hard_zero_and_one_probs(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        scores = mpe_scores(probs, np.array([0, 0]))
        assert np.isfinite(scores).all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            mpe_scores(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            mpe_scores(np.zeros((5, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            mpe_scores(np.zeros((2, 2)), np.array([0, 5]))

    @given(st.integers(2, 10), st.integers(1, 30), st.integers(0, 99))
    def test_property_scores_nonnegative(self, c, n, seed):
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(c), size=n)
        labels = rng.integers(0, c, n)
        assert np.all(mpe_scores(probs, labels) >= -1e-12)


class TestPredictionEntropy:
    def test_uniform_is_log_c(self):
        ent = prediction_entropy(uniform_probs(3, 4))
        np.testing.assert_allclose(ent, np.log(4))

    def test_onehot_is_zero(self):
        probs = np.array([[1.0, 0.0, 0.0]])
        assert prediction_entropy(probs)[0] == pytest.approx(0.0, abs=1e-9)


class TestAttackData:
    def test_balancing(self, rng):
        data = build_attack_data(rng.normal(size=100), rng.normal(size=40), rng=rng)
        assert data.membership.sum() == 40
        assert len(data) == 80

    def test_no_balancing(self, rng):
        data = build_attack_data(
            rng.normal(size=100), rng.normal(size=40), balance=False
        )
        assert len(data) == 140

    def test_rejects_empty_side(self):
        with pytest.raises(ValueError):
            build_attack_data(np.array([]), np.array([1.0]))

    def test_rejects_nonbinary_membership(self):
        with pytest.raises(ValueError):
            AttackData(np.zeros(2), np.array([0, 2]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            AttackData(np.zeros(3), np.zeros(2, dtype=int))


class TestMIAAccuracy:
    def test_perfect_separation_gives_one(self):
        data = build_attack_data(np.zeros(10), np.ones(10), balance=False)
        assert mia_accuracy(data) == 1.0

    def test_identical_scores_give_half(self):
        data = build_attack_data(np.ones(10), np.ones(10), balance=False)
        assert mia_accuracy(data) == pytest.approx(0.5)

    def test_at_least_half_on_balanced_data(self, rng):
        """The optimal threshold can always predict all-member or
        all-non-member, so balanced accuracy is >= 0.5."""
        for seed in range(5):
            r = np.random.default_rng(seed)
            data = build_attack_data(r.normal(size=50), r.normal(size=50), rng=r)
            assert mia_accuracy(data) >= 0.5

    def test_inverted_separation_still_uses_le_threshold(self):
        """Members scoring HIGHER than non-members (inverted signal)
        cannot exceed 0.5 by a <=-threshold attack on balanced data —
        matches the paper's one-sided attack definition."""
        data = build_attack_data(np.ones(10), np.zeros(10), balance=False)
        assert mia_accuracy(data) == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mia_accuracy(AttackData(np.array([]), np.array([], dtype=int)))

    @given(st.integers(0, 100))
    def test_property_accuracy_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        data = build_attack_data(
            rng.normal(size=20), rng.normal(size=20), rng=rng
        )
        assert 0.0 <= mia_accuracy(data) <= 1.0


class TestROC:
    def test_endpoints(self, rng):
        data = build_attack_data(rng.normal(size=30), rng.normal(size=30), rng=rng)
        fpr, tpr = roc_curve(data)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone(self, rng):
        data = build_attack_data(rng.normal(size=50), rng.normal(size=50), rng=rng)
        fpr, tpr = roc_curve(data)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve(AttackData(np.zeros(3), np.ones(3, dtype=int)))

    def test_tpr_at_fpr_perfect(self):
        data = build_attack_data(np.zeros(100), np.ones(100), balance=False)
        assert tpr_at_fpr(data, 0.01) == 1.0

    def test_tpr_at_fpr_random_is_small(self, rng):
        member = rng.normal(size=2000)
        nonmember = rng.normal(size=2000)
        data = build_attack_data(member, nonmember, balance=False)
        assert tpr_at_fpr(data, 0.01) < 0.1

    def test_tpr_at_low_fpr_le_than_at_high_fpr(self, rng):
        member = rng.normal(loc=-0.5, size=300)
        nonmember = rng.normal(size=300)
        data = build_attack_data(member, nonmember, balance=False)
        assert tpr_at_fpr(data, 0.01) <= tpr_at_fpr(data, 0.1)


class TestReport:
    def test_report_fields(self, rng):
        member = rng.normal(loc=-1.0, size=100)
        nonmember = rng.normal(size=100)
        report = mia_report(build_attack_data(member, nonmember, rng=rng))
        assert 0.5 <= report.accuracy <= 1.0
        assert 0.0 <= report.tpr_at_1_fpr <= 1.0
        assert 0.5 <= report.auc <= 1.0
        assert report.n_members == report.n_nonmembers == 100

    def test_auc_near_half_for_random(self, rng):
        data = build_attack_data(
            rng.normal(size=3000), rng.normal(size=3000), rng=rng
        )
        assert mia_report(data).auc == pytest.approx(0.5, abs=0.05)

    def test_stronger_separation_higher_auc(self, rng):
        weak = mia_report(
            build_attack_data(
                rng.normal(-0.2, 1, 500), rng.normal(0, 1, 500), rng=rng
            )
        )
        strong = mia_report(
            build_attack_data(
                rng.normal(-2.0, 1, 500), rng.normal(0, 1, 500), rng=rng
            )
        )
        assert strong.auc > weak.auc


class TestThresholdAttackProperties:
    """Property tests on the threshold-attack machinery."""

    @given(st.integers(0, 60))
    def test_accuracy_invariant_to_monotone_transform(self, seed):
        """The optimal-threshold attack depends only on score RANKS, so
        any strictly increasing transform leaves accuracy unchanged."""
        r = np.random.default_rng(seed)
        member = r.normal(size=30)
        nonmember = r.normal(loc=0.5, size=30)
        plain = build_attack_data(member, nonmember, balance=False)
        warped = build_attack_data(
            np.exp(member), np.exp(nonmember), balance=False
        )
        assert mia_accuracy(plain) == pytest.approx(mia_accuracy(warped))

    @given(st.integers(0, 60))
    def test_tpr_monotone_in_fpr_budget(self, seed):
        r = np.random.default_rng(seed)
        data = build_attack_data(
            r.normal(-0.3, 1, 40), r.normal(0, 1, 40), balance=False
        )
        budgets = [0.01, 0.05, 0.1, 0.5, 1.0]
        values = [tpr_at_fpr(data, b) for b in budgets]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @given(st.integers(0, 60))
    def test_shifting_members_down_never_hurts(self, seed):
        """Moving member scores strictly lower (more member-like)
        cannot decrease attack accuracy."""
        r = np.random.default_rng(seed)
        member = r.normal(size=25)
        nonmember = r.normal(size=25)
        base = mia_accuracy(build_attack_data(member, nonmember, balance=False))
        shifted = mia_accuracy(
            build_attack_data(member - 10.0, nonmember, balance=False)
        )
        assert shifted >= base - 1e-12

    @given(st.integers(0, 60))
    def test_roc_curve_valid_rates(self, seed):
        r = np.random.default_rng(seed)
        data = build_attack_data(
            r.normal(size=20), r.normal(size=20), balance=False
        )
        fpr, tpr = roc_curve(data)
        assert np.all((fpr >= 0) & (fpr <= 1))
        assert np.all((tpr >= 0) & (tpr <= 1))


class TestMpeScoresBatched:
    def test_matches_per_row_mpe(self, rng):
        from repro.privacy import mpe_scores_batched

        probs = rng.dirichlet(np.ones(6), size=(4, 9))
        labels = rng.integers(0, 6, size=(4, 9))
        batched = mpe_scores_batched(probs, labels)
        for b in range(4):
            np.testing.assert_allclose(
                batched[b], mpe_scores(probs[b], labels[b]), rtol=1e-12
            )

    def test_shared_labels_broadcast(self, rng):
        from repro.privacy import mpe_scores_batched

        probs = rng.dirichlet(np.ones(4), size=(3, 5))
        labels = rng.integers(0, 4, size=5)
        batched = mpe_scores_batched(probs, labels)
        for b in range(3):
            np.testing.assert_allclose(
                batched[b], mpe_scores(probs[b], labels), rtol=1e-12
            )

    def test_validates_shapes_and_labels(self, rng):
        from repro.privacy import mpe_scores_batched

        probs = rng.dirichlet(np.ones(4), size=(3, 5))
        with pytest.raises(ValueError):
            mpe_scores_batched(probs[0], np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            mpe_scores_batched(probs, np.zeros((2, 5), dtype=int))
        with pytest.raises(ValueError):
            mpe_scores_batched(probs, np.full((3, 5), 9))


class TestMiaReportsBatched:
    def _check_rows(self, member_block, nonmember_block):
        from repro.privacy import mia_reports_batched

        reports = mia_reports_batched(member_block, nonmember_block)
        for b, report in enumerate(reports):
            expected = mia_report(
                build_attack_data(
                    member_block[b], nonmember_block[b], balance=False
                )
            )
            assert report.accuracy == pytest.approx(expected.accuracy)
            assert report.tpr_at_1_fpr == pytest.approx(expected.tpr_at_1_fpr)
            assert report.auc == pytest.approx(expected.auc)
            assert report.n_members == expected.n_members
            assert report.n_nonmembers == expected.n_nonmembers

    def test_matches_per_row_reports(self, rng):
        self._check_rows(
            rng.normal(size=(5, 16)), rng.normal(size=(5, 16)) + 0.5
        )

    def test_unbalanced_sides(self, rng):
        self._check_rows(rng.normal(size=(3, 10)), rng.normal(size=(3, 25)))

    def test_tied_scores_match_per_row(self, rng):
        """Ties restrict realizable thresholds; the vectorized sweep
        must mask the same cuts the scalar sweep skips."""
        member = np.repeat(rng.normal(size=(4, 4)), 3, axis=1)
        nonmember = np.repeat(rng.normal(size=(4, 4)), 3, axis=1)
        nonmember[:, ::2] = member[:, ::2]  # cross-class ties too
        self._check_rows(member, nonmember)

    def test_perfect_separation(self):
        from repro.privacy import mia_reports_batched

        member = np.tile(np.arange(5.0), (2, 1))
        nonmember = member + 100.0
        for report in mia_reports_batched(member, nonmember):
            assert report.accuracy == 1.0
            assert report.auc == pytest.approx(1.0)
            assert report.tpr_at_1_fpr == pytest.approx(1.0)

    def test_validates_inputs(self, rng):
        from repro.privacy import mia_reports_batched

        with pytest.raises(ValueError):
            mia_reports_batched(rng.normal(size=5), rng.normal(size=(1, 5)))
        with pytest.raises(ValueError):
            mia_reports_batched(
                rng.normal(size=(2, 5)), rng.normal(size=(3, 5))
            )
        with pytest.raises(ValueError):
            mia_reports_batched(np.empty((2, 0)), rng.normal(size=(2, 5)))
