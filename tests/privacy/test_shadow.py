"""Tests for the shadow-model attack baseline."""

import numpy as np
import pytest

from repro.data import make_synthetic_tabular_dataset
from repro.nn import CrossEntropyLoss, SGD, build_mlp
from repro.privacy.shadow import (
    ShadowAttackConfig,
    ShadowModelAttack,
    membership_features,
)


@pytest.fixture(scope="module")
def victim_setup():
    """A victim model overfit on its shard, plus attacker-side data."""
    train, _ = make_synthetic_tabular_dataset(
        "t", 800, 100, num_features=32, num_classes=20, flip_prob=0.35, seed=0
    )
    rng = np.random.default_rng(0)
    order = rng.permutation(len(train))
    victim_members = order[:60]
    victim_nonmembers = order[60:120]
    attacker_pool = order[120:]

    victim = build_mlp(32, 20, hidden=(64,), rng=np.random.default_rng(1))
    loss_fn = CrossEntropyLoss()
    opt = SGD(victim.parameters(), lr=0.1, momentum=0.9)
    x_m, y_m = train.x[victim_members], train.y[victim_members]
    for _ in range(80):
        opt.zero_grad()
        loss_fn(victim.forward(x_m), y_m)
        victim.backward(loss_fn.backward())
        opt.step()

    from repro.metrics.evaluation import predict_proba

    victim.eval()
    member_probs = predict_proba(victim, x_m)
    nonmember_probs = predict_proba(victim, train.x[victim_nonmembers])
    return {
        "train": train,
        "attacker_idx": attacker_pool,
        "member_probs": member_probs,
        "member_labels": y_m,
        "nonmember_probs": nonmember_probs,
        "nonmember_labels": train.y[victim_nonmembers],
    }


class TestMembershipFeatures:
    def test_shape(self, rng):
        probs = rng.dirichlet(np.ones(5), size=20)
        labels = rng.integers(0, 5, 20)
        assert membership_features(probs, labels).shape == (20, 4)

    def test_finite(self, rng):
        probs = np.eye(4)[np.zeros(8, dtype=int)]
        labels = np.zeros(8, dtype=int)
        assert np.isfinite(membership_features(probs, labels)).all()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShadowAttackConfig(n_shadows=0)
        with pytest.raises(ValueError):
            ShadowAttackConfig(shadow_epochs=0)


class TestShadowAttack:
    def test_rejects_tiny_attacker_data(self, victim_setup):
        template = build_mlp(32, 20, hidden=(64,), rng=np.random.default_rng(2))
        with pytest.raises(ValueError):
            ShadowModelAttack(
                template,
                victim_setup["train"].x[:4],
                victim_setup["train"].y[:4],
                ShadowAttackConfig(n_shadows=4),
            )

    def test_scores_require_fit(self, victim_setup):
        template = build_mlp(32, 20, hidden=(64,), rng=np.random.default_rng(2))
        idx = victim_setup["attacker_idx"]
        attack = ShadowModelAttack(
            template,
            victim_setup["train"].x[idx],
            victim_setup["train"].y[idx],
        )
        with pytest.raises(RuntimeError):
            attack.membership_scores(
                victim_setup["member_probs"], victim_setup["member_labels"]
            )

    def test_end_to_end_beats_chance(self, victim_setup):
        """The learned attack distinguishes members of an overfit
        victim at better-than-chance accuracy."""
        template = build_mlp(32, 20, hidden=(64,), rng=np.random.default_rng(2))
        idx = victim_setup["attacker_idx"]
        attack = ShadowModelAttack(
            template,
            victim_setup["train"].x[idx],
            victim_setup["train"].y[idx],
            ShadowAttackConfig(n_shadows=2, shadow_epochs=15, attack_epochs=40),
        ).fit()
        report = attack.attack(
            victim_setup["member_probs"],
            victim_setup["member_labels"],
            victim_setup["nonmember_probs"],
            victim_setup["nonmember_labels"],
            rng=np.random.default_rng(3),
        )
        assert report.accuracy > 0.6
        assert report.auc > 0.6

    def test_scores_low_for_members(self, victim_setup):
        template = build_mlp(32, 20, hidden=(64,), rng=np.random.default_rng(2))
        idx = victim_setup["attacker_idx"]
        attack = ShadowModelAttack(
            template,
            victim_setup["train"].x[idx],
            victim_setup["train"].y[idx],
            ShadowAttackConfig(n_shadows=2, shadow_epochs=15, attack_epochs=40),
        ).fit()
        m = attack.membership_scores(
            victim_setup["member_probs"], victim_setup["member_labels"]
        )
        n = attack.membership_scores(
            victim_setup["nonmember_probs"], victim_setup["nonmember_labels"]
        )
        assert m.mean() < n.mean()
