"""Tests for the additional threshold attacks (entropy/confidence/loss)."""

import numpy as np
import pytest

from repro.privacy import (
    ATTACKS,
    compare_attacks,
    confidence_scores,
    entropy_scores,
    loss_scores,
    run_attack,
)


def victim_outputs(rng, n=200, c=10, member_confidence=0.9):
    """Simulated outputs: members are confidently correct, non-members
    are near-uniform."""
    member_labels = rng.integers(0, c, n)
    member_probs = np.full((n, c), (1 - member_confidence) / (c - 1))
    member_probs[np.arange(n), member_labels] = member_confidence
    nonmember_labels = rng.integers(0, c, n)
    nonmember_probs = rng.dirichlet(np.ones(c), size=n)
    return member_probs, member_labels, nonmember_probs, nonmember_labels


class TestScoreFunctions:
    def test_entropy_low_for_confident(self):
        confident = np.array([[0.98, 0.01, 0.01]])
        uniform = np.array([[1 / 3, 1 / 3, 1 / 3]])
        labels = np.array([0])
        assert entropy_scores(confident, labels)[0] < entropy_scores(uniform, labels)[0]

    def test_entropy_ignores_label(self):
        probs = np.array([[0.98, 0.01, 0.01]])
        a = entropy_scores(probs, np.array([0]))
        b = entropy_scores(probs, np.array([2]))
        assert a[0] == b[0]

    def test_confidence_low_for_correct_confident(self):
        probs = np.array([[0.9, 0.1], [0.1, 0.9]])
        scores = confidence_scores(probs, np.array([0, 0]))
        assert scores[0] < scores[1]  # first is confident in true label

    def test_loss_matches_cross_entropy(self):
        probs = np.array([[0.5, 0.5]])
        scores = loss_scores(probs, np.array([0]))
        assert scores[0] == pytest.approx(np.log(2))

    def test_loss_handles_zero_prob(self):
        probs = np.array([[0.0, 1.0]])
        assert np.isfinite(loss_scores(probs, np.array([0]))[0])

    @pytest.mark.parametrize("fn", [entropy_scores, confidence_scores, loss_scores])
    def test_rejects_bad_shapes(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros(5), np.zeros(5, dtype=int))


class TestAttackRegistry:
    def test_four_attacks_registered(self):
        assert set(ATTACKS) == {"mpe", "entropy", "confidence", "loss"}

    def test_run_attack_unknown_name(self, rng):
        m, ml, n, nl = victim_outputs(rng)
        with pytest.raises(ValueError):
            run_attack("shadow", m, ml, n, nl)

    @pytest.mark.parametrize("name", sorted(ATTACKS))
    def test_each_attack_beats_chance_on_separable_victim(self, name, rng):
        m, ml, n, nl = victim_outputs(rng)
        report = run_attack(name, m, ml, n, nl, rng=rng)
        assert report.accuracy > 0.7
        assert report.auc > 0.7

    def test_compare_returns_all(self, rng):
        results = compare_attacks(*victim_outputs(rng), rng=rng)
        assert set(results) == set(ATTACKS)

    def test_mpe_at_least_as_strong_as_entropy_on_wrong_confident(self, rng):
        """MPE uses the label; plain entropy cannot distinguish a
        confidently-wrong non-member from a confidently-right member.
        Build a victim where non-members are confidently WRONG."""
        c = 10
        n = 300
        member_labels = rng.integers(0, c, n)
        member_probs = np.full((n, c), 0.01 / (c - 1))
        member_probs[np.arange(n), member_labels] = 0.99
        nonmember_labels = rng.integers(0, c, n)
        wrong = (nonmember_labels + 1) % c
        nonmember_probs = np.full((n, c), 0.01 / (c - 1))
        nonmember_probs[np.arange(n), wrong] = 0.99
        mpe = run_attack(
            "mpe", member_probs, member_labels, nonmember_probs, nonmember_labels,
            rng=rng,
        )
        ent = run_attack(
            "entropy", member_probs, member_labels, nonmember_probs,
            nonmember_labels, rng=rng,
        )
        assert mpe.accuracy > ent.accuracy + 0.3
        assert mpe.accuracy > 0.95
        assert ent.accuracy < 0.6
