"""Tests for DP-SGD primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.privacy import DPSGDConfig, clip_per_sample, noisy_gradient


def grad_list(rng, scale=1.0):
    return [rng.normal(size=(3, 4)) * scale, rng.normal(size=4) * scale]


def global_norm(grads):
    return np.sqrt(sum(float((g**2).sum()) for g in grads))


class TestConfig:
    def test_valid(self):
        DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)

    def test_rejects_bad_clip(self):
        with pytest.raises(ValueError):
            DPSGDConfig(clip_norm=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            DPSGDConfig(noise_multiplier=-1.0)

    def test_requires_sigma_or_target(self):
        with pytest.raises(ValueError):
            DPSGDConfig(noise_multiplier=None, target_epsilon=None)

    def test_target_epsilon_alone_ok(self):
        DPSGDConfig(noise_multiplier=None, target_epsilon=10.0)


class TestClipping:
    def test_large_gradient_clipped_to_norm(self, rng):
        grads = grad_list(rng, scale=100.0)
        clipped, norm = clip_per_sample(grads, clip_norm=1.0)
        assert global_norm(clipped) == pytest.approx(1.0, rel=1e-9)
        assert norm == pytest.approx(global_norm(grads))

    def test_small_gradient_untouched(self, rng):
        grads = grad_list(rng, scale=1e-4)
        clipped, _ = clip_per_sample(grads, clip_norm=1.0)
        for orig, c in zip(grads, clipped):
            np.testing.assert_array_equal(orig, c)

    def test_direction_preserved(self, rng):
        grads = grad_list(rng, scale=50.0)
        clipped, _ = clip_per_sample(grads, clip_norm=1.0)
        # Clipping is a positive scalar multiple.
        ratio = clipped[0] / grads[0]
        assert np.allclose(ratio, ratio.flat[0])
        assert ratio.flat[0] > 0

    def test_zero_gradient_safe(self):
        clipped, norm = clip_per_sample([np.zeros(3)], clip_norm=1.0)
        assert norm == 0.0
        np.testing.assert_array_equal(clipped[0], np.zeros(3))

    @given(st.floats(0.1, 10.0), st.integers(0, 50))
    def test_property_clipped_norm_bounded(self, clip, seed):
        rng = np.random.default_rng(seed)
        clipped, _ = clip_per_sample(grad_list(rng, scale=10.0), clip)
        assert global_norm(clipped) <= clip * (1 + 1e-9)


class TestNoisyGradient:
    def test_zero_noise_is_plain_average(self, rng):
        grads = grad_list(rng)
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.0)
        out = noisy_gradient(grads, n_samples=4, config=config, rng=rng)
        for g, o in zip(grads, out):
            np.testing.assert_allclose(o, g / 4)

    def test_noise_scale_matches_sigma_times_clip(self):
        rng = np.random.default_rng(0)
        config = DPSGDConfig(clip_norm=2.0, noise_multiplier=3.0)
        zeros = [np.zeros(20_000)]
        out = noisy_gradient(zeros, n_samples=1, config=config, rng=rng)
        assert out[0].std() == pytest.approx(6.0, rel=0.05)

    def test_noise_divided_by_batch(self):
        rng = np.random.default_rng(0)
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        zeros = [np.zeros(20_000)]
        out = noisy_gradient(zeros, n_samples=10, config=config, rng=rng)
        assert out[0].std() == pytest.approx(0.1, rel=0.05)

    def test_rejects_nonpositive_batch(self, rng):
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        with pytest.raises(ValueError):
            noisy_gradient([np.zeros(2)], 0, config, rng)

    def test_rejects_unresolved_sigma(self, rng):
        config = DPSGDConfig(noise_multiplier=None, target_epsilon=5.0)
        with pytest.raises(ValueError):
            noisy_gradient([np.zeros(2)], 1, config, rng)

    def test_deterministic_given_rng(self):
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        a = noisy_gradient(
            [np.zeros(10)], 2, config, np.random.default_rng(3)
        )
        b = noisy_gradient(
            [np.zeros(10)], 2, config, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a[0], b[0])
