"""Tests for DP-SGD primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.privacy import DPSGDConfig, clip_per_sample, noisy_gradient


def grad_list(rng, scale=1.0):
    return [rng.normal(size=(3, 4)) * scale, rng.normal(size=4) * scale]


def global_norm(grads):
    return np.sqrt(sum(float((g**2).sum()) for g in grads))


class TestConfig:
    def test_valid(self):
        DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)

    def test_rejects_bad_clip(self):
        with pytest.raises(ValueError):
            DPSGDConfig(clip_norm=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            DPSGDConfig(noise_multiplier=-1.0)

    def test_requires_sigma_or_target(self):
        with pytest.raises(ValueError):
            DPSGDConfig(noise_multiplier=None, target_epsilon=None)

    def test_target_epsilon_alone_ok(self):
        DPSGDConfig(noise_multiplier=None, target_epsilon=10.0)


class TestClipping:
    def test_large_gradient_clipped_to_norm(self, rng):
        grads = grad_list(rng, scale=100.0)
        clipped, norm = clip_per_sample(grads, clip_norm=1.0)
        assert global_norm(clipped) == pytest.approx(1.0, rel=1e-9)
        assert norm == pytest.approx(global_norm(grads))

    def test_small_gradient_untouched(self, rng):
        grads = grad_list(rng, scale=1e-4)
        clipped, _ = clip_per_sample(grads, clip_norm=1.0)
        for orig, c in zip(grads, clipped):
            np.testing.assert_array_equal(orig, c)

    def test_direction_preserved(self, rng):
        grads = grad_list(rng, scale=50.0)
        clipped, _ = clip_per_sample(grads, clip_norm=1.0)
        # Clipping is a positive scalar multiple.
        ratio = clipped[0] / grads[0]
        assert np.allclose(ratio, ratio.flat[0])
        assert ratio.flat[0] > 0

    def test_zero_gradient_safe(self):
        clipped, norm = clip_per_sample([np.zeros(3)], clip_norm=1.0)
        assert norm == 0.0
        np.testing.assert_array_equal(clipped[0], np.zeros(3))

    @given(st.floats(0.1, 10.0), st.integers(0, 50))
    def test_property_clipped_norm_bounded(self, clip, seed):
        rng = np.random.default_rng(seed)
        clipped, _ = clip_per_sample(grad_list(rng, scale=10.0), clip)
        assert global_norm(clipped) <= clip * (1 + 1e-9)


class TestNoisyGradient:
    def test_zero_noise_is_plain_average(self, rng):
        grads = grad_list(rng)
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.0)
        out = noisy_gradient(grads, n_samples=4, config=config, rng=rng)
        for g, o in zip(grads, out):
            np.testing.assert_allclose(o, g / 4)

    def test_noise_scale_matches_sigma_times_clip(self):
        rng = np.random.default_rng(0)
        config = DPSGDConfig(clip_norm=2.0, noise_multiplier=3.0)
        zeros = [np.zeros(20_000)]
        out = noisy_gradient(zeros, n_samples=1, config=config, rng=rng)
        assert out[0].std() == pytest.approx(6.0, rel=0.05)

    def test_noise_divided_by_batch(self):
        rng = np.random.default_rng(0)
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        zeros = [np.zeros(20_000)]
        out = noisy_gradient(zeros, n_samples=10, config=config, rng=rng)
        assert out[0].std() == pytest.approx(0.1, rel=0.05)

    def test_rejects_nonpositive_batch(self, rng):
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        with pytest.raises(ValueError):
            noisy_gradient([np.zeros(2)], 0, config, rng)

    def test_rejects_unresolved_sigma(self, rng):
        config = DPSGDConfig(noise_multiplier=None, target_epsilon=5.0)
        with pytest.raises(ValueError):
            noisy_gradient([np.zeros(2)], 1, config, rng)

    def test_deterministic_given_rng(self):
        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        a = noisy_gradient(
            [np.zeros(10)], 2, config, np.random.default_rng(3)
        )
        b = noisy_gradient(
            [np.zeros(10)], 2, config, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a[0], b[0])


class TestBlockOps:
    """Block-level counterparts must reproduce the serial primitives
    bit for bit (same folds, same RNG consumption per row)."""

    def _block(self, rng, rows=5, scale=10.0):
        # Two "parameters" laid out in columns, plus a buffer column
        # at the end that the segments never touch.
        from repro.privacy import clip_block

        grads = rng.normal(size=(rows, 17)) * scale
        grads[:, 16] = 999.0  # buffer column: must stay untouched
        segments = [(0, 12), (12, 16)]
        return grads, segments, clip_block

    def test_clip_block_matches_serial(self, rng):
        grads, segments, clip_block = self._block(rng)
        expected_rows = []
        expected_norms = []
        for row in grads:
            clipped, norm = clip_per_sample(
                [row[0:12], row[12:16]], clip_norm=1.0
            )
            expected_rows.append(np.concatenate(clipped))
            expected_norms.append(norm)
        norms = clip_block(grads, segments, clip_norm=1.0)
        np.testing.assert_array_equal(norms, np.asarray(expected_norms))
        np.testing.assert_array_equal(
            grads[:, :16], np.stack(expected_rows)
        )
        np.testing.assert_array_equal(grads[:, 16], 999.0)

    def test_clip_block_float32_scale_applied_in_dtype(self, rng):
        from repro.privacy import clip_block

        grads = (rng.normal(size=(3, 8)) * 50).astype(np.float32)
        reference = grads.copy()
        clip_block(grads, [(0, 8)], clip_norm=1.0)
        for b in range(3):
            clipped, _ = clip_per_sample([reference[b]], clip_norm=1.0)
            np.testing.assert_array_equal(grads[b], clipped[0])
        assert grads.dtype == np.float32

    def test_noisy_gradient_block_matches_serial(self, rng):
        from repro.privacy import noisy_gradient_block

        config = DPSGDConfig(clip_norm=2.0, noise_multiplier=0.7)
        summed = rng.normal(size=(4, 16))
        segments = [(0, 12), (12, 16)]
        serial = [
            noisy_gradient(
                [summed[b, 0:12].copy(), summed[b, 12:16].copy()],
                n_samples=3,
                config=config,
                rng=np.random.default_rng(100 + b),
            )
            for b in range(4)
        ]
        out = noisy_gradient_block(
            summed, 3, config,
            [np.random.default_rng(100 + b) for b in range(4)],
            segments,
        )
        for b in range(4):
            np.testing.assert_array_equal(
                out[b], np.concatenate(serial[b])
            )

    def test_noisy_gradient_block_zero_noise_keeps_dtype(self, rng):
        from repro.privacy import noisy_gradient_block

        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.0)
        summed = rng.normal(size=(2, 6)).astype(np.float32)
        out = noisy_gradient_block(
            summed, 2, config,
            [np.random.default_rng(b) for b in range(2)], [(0, 6)],
        )
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, summed / 2)

    def test_noisy_gradient_block_validates(self, rng):
        from repro.privacy import noisy_gradient_block

        config = DPSGDConfig(clip_norm=1.0, noise_multiplier=1.0)
        with pytest.raises(ValueError, match="positive"):
            noisy_gradient_block(
                np.zeros((1, 2)), 0, config,
                [np.random.default_rng(0)], [(0, 2)],
            )
        with pytest.raises(ValueError, match="generator per block row"):
            noisy_gradient_block(
                np.zeros((2, 2)), 1, config,
                [np.random.default_rng(0)], [(0, 2)],
            )
