"""Tests for round records and run aggregation."""

import json

import numpy as np
import pytest

from repro.metrics import ModelEvaluation, RoundRecord, RunResult


def evaluation(node_id=0, test=0.5, train=0.9, local_test=0.6, mia=0.7, tpr=0.1):
    return ModelEvaluation(
        node_id=node_id,
        global_test_accuracy=test,
        local_train_accuracy=train,
        local_test_accuracy=local_test,
        mia_accuracy=mia,
        mia_tpr_at_1_fpr=tpr,
        mia_auc=0.75,
    )


class TestRoundRecord:
    def test_from_evaluations_averages(self):
        record = RoundRecord.from_evaluations(
            0,
            [evaluation(0, test=0.4, mia=0.6), evaluation(1, test=0.6, mia=0.8)],
        )
        assert record.global_test_accuracy == pytest.approx(0.5)
        assert record.mia_accuracy == pytest.approx(0.7)

    def test_max_tpr_tracked(self):
        record = RoundRecord.from_evaluations(
            0, [evaluation(tpr=0.1), evaluation(tpr=0.5)]
        )
        assert record.max_mia_tpr_at_1_fpr == pytest.approx(0.5)
        assert record.mia_tpr_at_1_fpr == pytest.approx(0.3)

    def test_generalization_error(self):
        record = RoundRecord.from_evaluations(
            2, [evaluation(train=0.9, local_test=0.6)]
        )
        assert record.generalization_error == pytest.approx(0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RoundRecord.from_evaluations(0, [])

    def test_optional_fields(self):
        record = RoundRecord.from_evaluations(
            0, [evaluation()], messages_sent=42, canary_tpr_at_1_fpr=0.9,
            epsilon=12.5,
        )
        assert record.messages_sent == 42
        assert record.canary_tpr_at_1_fpr == 0.9
        assert record.epsilon == 12.5


class TestRunResult:
    def make_run(self):
        run = RunResult("demo")
        for i, (test, mia, tpr) in enumerate(
            [(0.3, 0.6, 0.05), (0.5, 0.7, 0.10), (0.45, 0.75, 0.08)]
        ):
            run.append(
                RoundRecord.from_evaluations(
                    i,
                    [evaluation(test=test, mia=mia, tpr=tpr)],
                    messages_sent=10,
                )
            )
        return run

    def test_series_extraction(self):
        run = self.make_run()
        np.testing.assert_allclose(
            run.series("global_test_accuracy"), [0.3, 0.5, 0.45]
        )

    def test_series_handles_none(self):
        run = RunResult("x")
        run.append(RoundRecord.from_evaluations(0, [evaluation()]))
        series = run.series("canary_tpr_at_1_fpr")
        assert np.isnan(series[0])

    def test_max_properties(self):
        run = self.make_run()
        assert run.max_test_accuracy == pytest.approx(0.5)
        assert run.max_mia_accuracy == pytest.approx(0.75)
        assert run.max_mia_tpr == pytest.approx(0.10)

    def test_total_messages(self):
        assert self.make_run().total_messages == 30

    def test_summary_keys(self):
        summary = self.make_run().summary()
        assert summary["config"] == "demo"
        assert summary["rounds"] == 3
        assert "max_test_accuracy" in summary
        assert "final_generalization_error" in summary


class TestModelSpreadField:
    def test_default_zero(self):
        record = RoundRecord.from_evaluations(0, [evaluation()])
        assert record.model_spread == 0.0

    def test_passed_through(self):
        record = RoundRecord.from_evaluations(
            0, [evaluation()], model_spread=1.25
        )
        assert record.model_spread == 1.25

    def test_series_extraction(self):
        run = RunResult("x")
        for i, s in enumerate([0.5, 0.4, 0.3]):
            run.append(
                RoundRecord.from_evaluations(i, [evaluation()], model_spread=s)
            )
        np.testing.assert_allclose(run.series("model_spread"), [0.5, 0.4, 0.3])


class TestJSONRoundTrip:
    def make_run(self):
        run = RunResult(
            "rt", metadata={"dataset": "purchase100", "beta": None, "n_nodes": 6}
        )
        for i in range(3):
            run.append(
                RoundRecord.from_evaluations(
                    i,
                    [evaluation(test=0.1 * i + 1 / 3)],
                    messages_sent=i * 7,
                    canary_tpr_at_1_fpr=None if i == 0 else 0.25,
                    epsilon=None if i == 0 else 1.5,
                    model_spread=0.1 * i,
                )
            )
        return run

    def test_to_json_from_json_round_trip_bit_exact(self):
        run = self.make_run()
        restored = RunResult.from_json(run.to_json())
        assert restored.config_name == run.config_name
        assert restored.metadata == run.metadata
        assert restored.rounds == run.rounds  # dataclass equality: exact floats
        # And stable text: serializing again yields identical bytes.
        assert restored.to_json() == run.to_json()

    def test_round_record_dict_round_trip(self):
        record = self.make_run().rounds[2]
        assert RoundRecord.from_dict(record.to_dict()) == record

    def test_round_record_rejects_unknown_keys_listing_valid(self):
        payload = self.make_run().rounds[0].to_dict()
        payload["mia_acc"] = 0.5
        with pytest.raises(ValueError, match="mia_accuracy"):
            RoundRecord.from_dict(payload)

    def test_from_dict_missing_config_name_is_value_error(self):
        with pytest.raises(ValueError, match="not a serialized RunResult"):
            RunResult.from_dict({"rounds": []})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialized RunResult"):
            RunResult.from_json("{not json")
        with pytest.raises(ValueError, match="not a serialized RunResult"):
            RunResult.from_json('{"no": "rounds"}')


class TestRoundRecordJSONFrames:
    """RoundRecord.to_json is the service's SSE frame format."""

    def make_record(self) -> RoundRecord:
        return RoundRecord(
            round_index=3,
            global_test_accuracy=1 / 3,
            local_train_accuracy=0.75,
            local_test_accuracy=0.5,
            mia_accuracy=0.6180339887498949,
            mia_tpr_at_1_fpr=0.02,
            mia_auc=0.66,
            max_mia_tpr_at_1_fpr=0.09,
            canary_tpr_at_1_fpr=None,
            messages_sent=123,
            epsilon=None,
            model_spread=1e-7,
        )

    def test_single_line_sorted_keys(self):
        frame = self.make_record().to_json()
        assert "\n" not in frame
        keys = list(json.loads(frame))
        assert keys == sorted(keys)

    def test_round_trip_bit_exact(self):
        record = self.make_record()
        restored = RoundRecord.from_json(record.to_json())
        assert restored == record  # dataclass equality: exact floats
        assert restored.to_json() == record.to_json()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialized RoundRecord"):
            RoundRecord.from_json("{broken")
        with pytest.raises(ValueError, match="not a serialized RoundRecord"):
            RoundRecord.from_json('["a", "list"]')
