"""Tests for model evaluation metrics (Section 3.2)."""

import numpy as np
import pytest

from repro.metrics import (
    ModelEvaluation,
    accuracy,
    evaluate_model,
    generalization_error,
    predict_proba,
)
from repro.nn import CrossEntropyLoss, SGD, build_mlp


@pytest.fixture
def trained_model(rng):
    """MLP overfit on 20 samples, plus those samples and fresh ones."""
    model = build_mlp(10, 3, hidden=(32,), rng=rng)
    x_train = rng.normal(size=(20, 10))
    y_train = rng.integers(0, 3, 20)
    loss_fn = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.2, momentum=0.9)
    for _ in range(120):
        opt.zero_grad()
        loss_fn(model.forward(x_train), y_train)
        model.backward(loss_fn.backward())
        opt.step()
    x_test = rng.normal(size=(30, 10))
    y_test = rng.integers(0, 3, 30)
    return model, (x_train, y_train), (x_test, y_test)


class TestPredictProba:
    def test_rows_sum_to_one(self, trained_model):
        model, (x, _), _ = trained_model
        probs = predict_proba(model, x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_batching_matches_full_pass(self, trained_model, rng):
        model, (x, _), _ = trained_model
        full = predict_proba(model, x, batch_size=1000)
        batched = predict_proba(model, x, batch_size=3)
        np.testing.assert_allclose(full, batched)

    def test_restores_training_mode(self, trained_model):
        model, (x, _), _ = trained_model
        model.train()
        predict_proba(model, x)
        assert model.training

    def test_eval_mode_during_inference(self, trained_model):
        model, (x, _), _ = trained_model
        model.eval()
        predict_proba(model, x)
        assert not model.training


class TestAccuracy:
    def test_overfit_model_has_high_train_accuracy(self, trained_model):
        model, (x, y), _ = trained_model
        assert accuracy(model, x, y) > 0.9

    def test_random_labels_give_chance_level_on_test(self, trained_model):
        model, _, (x, y) = trained_model
        # Random unseen data: accuracy near 1/3 (generous margin).
        assert accuracy(model, x, y) < 0.8

    def test_rejects_empty(self, trained_model):
        model, _, _ = trained_model
        with pytest.raises(ValueError):
            accuracy(model, np.zeros((0, 10)), np.zeros(0))


class TestGeneralizationError:
    def test_positive_for_overfit_model(self, trained_model):
        model, (x_tr, y_tr), (x_te, y_te) = trained_model
        assert generalization_error(model, x_tr, y_tr, x_te, y_te) > 0.2


class TestEvaluateModel:
    def test_full_evaluation(self, trained_model, rng):
        model, (x_tr, y_tr), (x_te, y_te) = trained_model
        ev = evaluate_model(
            model, 3, x_te, y_te, x_tr, y_tr, x_te, y_te, rng=rng
        )
        assert isinstance(ev, ModelEvaluation)
        assert ev.node_id == 3
        assert ev.local_train_accuracy > ev.local_test_accuracy
        assert ev.generalization_error == pytest.approx(
            ev.local_train_accuracy - ev.local_test_accuracy
        )
        # Memorized members leak: attack beats random guessing.
        assert ev.mia_accuracy > 0.5
        assert 0.0 <= ev.mia_tpr_at_1_fpr <= 1.0
