"""Tests for model evaluation metrics (Section 3.2)."""

import numpy as np
import pytest

from repro.metrics import (
    ModelEvaluation,
    accuracy,
    evaluate_model,
    generalization_error,
    predict_proba,
)
from repro.nn import CrossEntropyLoss, SGD, build_mlp


@pytest.fixture
def trained_model(rng):
    """MLP overfit on 20 samples, plus those samples and fresh ones."""
    model = build_mlp(10, 3, hidden=(32,), rng=rng)
    x_train = rng.normal(size=(20, 10))
    y_train = rng.integers(0, 3, 20)
    loss_fn = CrossEntropyLoss()
    opt = SGD(model.parameters(), lr=0.2, momentum=0.9)
    for _ in range(120):
        opt.zero_grad()
        loss_fn(model.forward(x_train), y_train)
        model.backward(loss_fn.backward())
        opt.step()
    x_test = rng.normal(size=(30, 10))
    y_test = rng.integers(0, 3, 30)
    return model, (x_train, y_train), (x_test, y_test)


class TestPredictProba:
    def test_rows_sum_to_one(self, trained_model):
        model, (x, _), _ = trained_model
        probs = predict_proba(model, x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_batching_matches_full_pass(self, trained_model, rng):
        model, (x, _), _ = trained_model
        full = predict_proba(model, x, batch_size=1000)
        batched = predict_proba(model, x, batch_size=3)
        np.testing.assert_allclose(full, batched)

    def test_restores_training_mode(self, trained_model):
        model, (x, _), _ = trained_model
        model.train()
        predict_proba(model, x)
        assert model.training

    def test_eval_mode_during_inference(self, trained_model):
        model, (x, _), _ = trained_model
        model.eval()
        predict_proba(model, x)
        assert not model.training


class TestAccuracy:
    def test_overfit_model_has_high_train_accuracy(self, trained_model):
        model, (x, y), _ = trained_model
        assert accuracy(model, x, y) > 0.9

    def test_random_labels_give_chance_level_on_test(self, trained_model):
        model, _, (x, y) = trained_model
        # Random unseen data: accuracy near 1/3 (generous margin).
        assert accuracy(model, x, y) < 0.8

    def test_rejects_empty(self, trained_model):
        model, _, _ = trained_model
        with pytest.raises(ValueError):
            accuracy(model, np.zeros((0, 10)), np.zeros(0))


class TestGeneralizationError:
    def test_positive_for_overfit_model(self, trained_model):
        model, (x_tr, y_tr), (x_te, y_te) = trained_model
        assert generalization_error(model, x_tr, y_tr, x_te, y_te) > 0.2


class TestEvaluateModel:
    def test_full_evaluation(self, trained_model, rng):
        model, (x_tr, y_tr), (x_te, y_te) = trained_model
        ev = evaluate_model(
            model, 3, x_te, y_te, x_tr, y_tr, x_te, y_te, rng=rng
        )
        assert isinstance(ev, ModelEvaluation)
        assert ev.node_id == 3
        assert ev.local_train_accuracy > ev.local_test_accuracy
        assert ev.generalization_error == pytest.approx(
            ev.local_train_accuracy - ev.local_test_accuracy
        )
        # Memorized members leak: attack beats random guessing.
        assert ev.mia_accuracy > 0.5
        assert 0.0 <= ev.mia_tpr_at_1_fpr <= 1.0


class TestBatchedEvaluator:
    """Row-batch path vs the per-model reference path."""

    def _block(self, rng, dtype=np.float64, n_rows=5):
        from repro.nn import StateLayout, get_state

        model = build_mlp(10, 3, hidden=(16, 8), rng=rng)
        layout = StateLayout.from_model(model)
        template = get_state(model)
        params = np.empty((n_rows, layout.dim), dtype=dtype)
        states = []
        for b in range(n_rows):
            state = {k: rng.normal(size=v.shape) for k, v in template.items()}
            states.append(state)
            layout.pack(state, out=params[b])
        return model, layout, params, states

    def test_predict_proba_rows_matches_per_model(self, rng):
        from repro.metrics import BatchedEvaluator
        from repro.nn import set_state

        model, layout, params, states = self._block(rng)
        x = rng.normal(size=(12, 10))
        probs = BatchedEvaluator(model, layout).predict_proba_rows(params, x)
        for b, state in enumerate(states):
            set_state(model, state)
            np.testing.assert_allclose(
                probs[b], predict_proba(model, x), rtol=1e-9, atol=1e-12
            )

    def test_accuracy_rows_matches_per_model(self, rng):
        from repro.metrics import BatchedEvaluator
        from repro.nn import set_state

        model, layout, params, states = self._block(rng)
        x = rng.normal(size=(18, 10))
        y = rng.integers(0, 3, 18)
        accs = BatchedEvaluator(model, layout).accuracy_rows(params, x, y)
        for b, state in enumerate(states):
            set_state(model, state)
            assert accs[b] == pytest.approx(accuracy(model, x, y), abs=1e-12)

    def test_attack_observations_match_per_model(self, rng):
        from repro.metrics import BatchedEvaluator
        from repro.nn import set_state
        from repro.privacy import mpe_scores

        model, layout, params, states = self._block(rng)
        xs = [rng.normal(size=(7, 10)) for _ in states]
        ys = [rng.integers(0, 3, 7) for _ in states]
        obs = BatchedEvaluator(model, layout).attack_observations(params, xs, ys)
        for b, state in enumerate(states):
            set_state(model, state)
            probs = predict_proba(model, xs[b])
            np.testing.assert_allclose(
                obs[b][0], mpe_scores(probs, ys[b]), rtol=1e-9, atol=1e-12
            )
            assert obs[b][1] == pytest.approx(accuracy(model, xs[b], ys[b]))

    def test_attack_observations_ragged_sizes_and_rows(self, rng):
        """Different-size attack sets group separately; the rows
        indirection scores several sets against the same model."""
        from repro.metrics import BatchedEvaluator
        from repro.nn import set_state
        from repro.privacy import mpe_scores

        model, layout, params, states = self._block(rng, n_rows=3)
        xs = [rng.normal(size=(n, 10)) for n in (4, 9, 4, 9)]
        ys = [rng.integers(0, 3, x.shape[0]) for x in xs]
        rows = [0, 1, 2, 0]
        obs = BatchedEvaluator(model, layout).attack_observations(
            params, xs, ys, rows=rows
        )
        for i, row in enumerate(rows):
            set_state(model, states[row])
            probs = predict_proba(model, xs[i])
            np.testing.assert_allclose(
                obs[i][0], mpe_scores(probs, ys[i]), rtol=1e-9, atol=1e-12
            )

    def test_eval_batch_blocking_is_equivalent(self, rng):
        from repro.metrics import BatchedEvaluator

        model, layout, params, _ = self._block(rng)
        x = rng.normal(size=(11, 10))
        y = rng.integers(0, 3, 11)
        full = BatchedEvaluator(model, layout, eval_batch=0)
        blocked = BatchedEvaluator(model, layout, eval_batch=2, batch_size=4)
        np.testing.assert_allclose(
            full.predict_proba_rows(params, x),
            blocked.predict_proba_rows(params, x),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            full.accuracy_rows(params, x, y),
            blocked.accuracy_rows(params, x, y),
        )
        # Per-model inputs block along the sample axis too.
        xs = [rng.normal(size=(9, 10)) for _ in range(params.shape[0])]
        ys = [rng.integers(0, 3, 9) for _ in range(params.shape[0])]
        for (fs, fa), (bs, ba) in zip(
            full.attack_observations(params, xs, ys),
            blocked.attack_observations(params, xs, ys),
        ):
            np.testing.assert_allclose(fs, bs, rtol=1e-12)
            assert fa == pytest.approx(ba)

    def test_float32_block_matches_float32_per_model(self, rng):
        """Dtype contract: a float32 block is scored in float32 on both
        paths, and the two agree within float32 tolerance."""
        from repro.metrics import BatchedEvaluator
        from repro.nn import set_state

        model, layout, params, states = self._block(rng, dtype=np.float32)
        x = rng.normal(size=(12, 10))
        probs = BatchedEvaluator(model, layout).predict_proba_rows(params, x)
        assert probs.dtype == np.float32
        for b, state in enumerate(states):
            set_state(
                model, {k: v.astype(np.float32) for k, v in state.items()}
            )
            reference = predict_proba(model, x)
            assert reference.dtype == np.float32
            np.testing.assert_allclose(probs[b], reference, rtol=1e-4, atol=1e-5)

    def test_rejects_unsupported_model(self, rng):
        from repro.metrics import BatchedEvaluator
        from repro.nn import Module

        class Weird(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError, match="batched"):
            BatchedEvaluator(Weird())

    def test_rejects_bad_knobs(self, rng):
        from repro.metrics import BatchedEvaluator

        model, layout, _, _ = self._block(rng)
        with pytest.raises(ValueError):
            BatchedEvaluator(model, layout, eval_batch=-1)
        with pytest.raises(ValueError):
            BatchedEvaluator(model, layout, batch_size=0)

    def test_empty_input_returns_empty_block(self, rng):
        """Mirrors predict_proba's empty-input contract per row."""
        from repro.metrics import BatchedEvaluator

        model, layout, params, _ = self._block(rng)
        probs = BatchedEvaluator(model, layout).predict_proba_rows(
            params, np.zeros((0, 10))
        )
        assert probs.shape == (params.shape[0], 0, 0)


class TestPredictProbaDtype:
    def test_float32_model_keeps_float32_math(self, rng):
        """The workspace path also follows the model dtype instead of
        promoting to float64 (the arena-dtype contract)."""
        model = build_mlp(10, 3, hidden=(8,), rng=rng)
        model.astype(np.float32)
        probs = predict_proba(model, rng.normal(size=(6, 10)))
        assert probs.dtype == np.float32
