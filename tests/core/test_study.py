"""Tests for the high-level study API."""

import numpy as np
import pytest

from repro import Study, StudyConfig, VulnerabilityStudy, run_study


def tiny_config(**overrides):
    base = dict(
        name="test",
        dataset="purchase100",
        n_train=600,
        n_test=150,
        num_features=64,
        n_nodes=6,
        view_size=2,
        protocol="samo",
        rounds=2,
        train_per_node=24,
        test_per_node=12,
        mlp_hidden=(32, 16),
        local_epochs=1,
        batch_size=12,
        max_attack_samples=32,
        max_global_test=64,
    )
    base.update(overrides)
    return StudyConfig(**base)


class TestStudyConfig:
    def test_architecture_derived_from_dataset(self):
        assert StudyConfig(dataset="cifar10").architecture == "cnn"
        assert StudyConfig(dataset="cifar100").architecture == "resnet8"
        assert StudyConfig(dataset="fashion_mnist").architecture == "cnn"
        assert StudyConfig(dataset="purchase100").architecture == "mlp"

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            StudyConfig(dataset="imagenet").architecture

    def test_with_overrides(self):
        cfg = tiny_config().with_overrides(rounds=7, dynamic=True)
        assert cfg.rounds == 7
        assert cfg.dynamic
        assert cfg.dataset == "purchase100"  # untouched


class TestRunStudy:
    def test_produces_one_record_per_round(self):
        result = run_study(tiny_config(rounds=3))
        assert len(result.rounds) == 3
        assert [r.round_index for r in result.rounds] == [0, 1, 2]

    def test_metrics_in_valid_ranges(self):
        result = run_study(tiny_config())
        for record in result.rounds:
            assert 0.0 <= record.global_test_accuracy <= 1.0
            assert 0.0 <= record.mia_accuracy <= 1.0
            assert 0.0 <= record.mia_tpr_at_1_fpr <= 1.0
            assert -1.0 <= record.generalization_error <= 1.0
            assert record.messages_sent > 0

    def test_metadata_recorded(self):
        result = run_study(tiny_config(dynamic=True))
        assert result.metadata["dynamic"] is True
        assert result.metadata["dataset"] == "purchase100"
        assert result.metadata["protocol"] == "samo"

    def test_metadata_records_execution_knobs(self):
        """Worker/shard sizing is part of the run's provenance: the
        metadata dict carries it alongside engine/executor."""
        result = run_study(
            tiny_config(
                executor="sharded", n_shards=2, shard_partition="balanced"
            )
        )
        assert result.metadata["engine"] == "flat"
        assert result.metadata["executor"] == "sharded"
        assert result.metadata["n_workers"] == 0
        assert result.metadata["n_shards"] == 2
        assert result.metadata["shard_partition"] == "balanced"

    def test_sharded_study_matches_serial_bitwise(self):
        """The executor contract holds through the full study pipeline
        (float64 default arena): metrics agree bit for bit."""
        serial = run_study(tiny_config(seed=3))
        sharded = run_study(
            tiny_config(seed=3, executor="sharded", n_shards=2)
        )
        for s_round, p_round in zip(serial.rounds, sharded.rounds):
            assert s_round.global_test_accuracy == p_round.global_test_accuracy
            assert s_round.mia_accuracy == p_round.mia_accuracy

    def test_metadata_records_fallback_counts(self):
        """Per-study fallback tallies are part of the run's provenance:
        an empty dict means every trained row took the fast path."""
        result = run_study(tiny_config(executor="batched"))
        assert result.metadata["fallback_counts"] == {}

    def test_dropout_study_stays_on_fast_path(self):
        """Stream-mode dropout (the default) batches and shards with
        zero per-row fallbacks and bit-identical metrics vs serial."""
        serial = run_study(tiny_config(seed=3, dropout=0.25))
        assert serial.metadata["dropout"] == 0.25
        for executor, extra in (
            ("batched", {}),
            ("sharded", {"n_shards": 2}),
        ):
            other = run_study(
                tiny_config(seed=3, dropout=0.25, executor=executor, **extra)
            )
            assert other.metadata["fallback_counts"] == {}, executor
            for s_round, o_round in zip(serial.rounds, other.rounds):
                assert (
                    s_round.global_test_accuracy
                    == o_round.global_test_accuracy
                ), executor
                assert s_round.mia_accuracy == o_round.mia_accuracy, executor

    def test_legacy_dropout_mode_counts_fallbacks(self):
        """dropout_mode="legacy" keeps the stateful per-layer draws; on
        the batched executor every trained row is tallied under the
        model-shape fallback reason."""
        result = run_study(
            tiny_config(dropout=0.25, dropout_mode="legacy", executor="batched")
        )
        counts = result.metadata["fallback_counts"]
        assert counts.get("no_batched_backward", 0) > 0

    def test_dp_study_stays_on_fast_path(self):
        """Vectorized per-sample DP-SGD: no per-row fallbacks on the
        batched executor, bit-identical metrics vs the serial run."""
        serial = run_study(tiny_config(seed=3, dp_epsilon=25.0))
        batched = run_study(
            tiny_config(seed=3, dp_epsilon=25.0, executor="batched")
        )
        assert batched.metadata["fallback_counts"] == {}
        for s_round, b_round in zip(serial.rounds, batched.rounds):
            assert s_round.global_test_accuracy == b_round.global_test_accuracy
            assert s_round.mia_accuracy == b_round.mia_accuracy

    def test_deterministic_given_seed(self):
        a = run_study(tiny_config(seed=5))
        b = run_study(tiny_config(seed=5))
        np.testing.assert_allclose(
            a.series("mia_accuracy"), b.series("mia_accuracy")
        )
        np.testing.assert_allclose(
            a.series("global_test_accuracy"), b.series("global_test_accuracy")
        )

    def test_base_gossip_protocol_runs(self):
        result = run_study(tiny_config(protocol="base_gossip"))
        assert len(result.rounds) == 2

    def test_image_dataset_runs(self):
        result = run_study(
            tiny_config(
                dataset="cifar10",
                image_size=8,
                model_width=4,
                n_train=400,
                train_per_node=16,
                test_per_node=8,
            )
        )
        assert len(result.rounds) == 2

    def test_noniid_runs(self):
        result = run_study(tiny_config(beta=0.2))
        assert result.metadata["beta"] == 0.2

    def test_mia_beats_chance_once_overfit(self):
        """Core phenomenon: after a few rounds the MPE attack exceeds
        0.5 accuracy on node models."""
        result = run_study(tiny_config(rounds=3, local_epochs=3))
        assert result.max_mia_accuracy > 0.55


class TestStudySession:
    def test_streaming_bit_identical_to_run_study(self):
        config = tiny_config(rounds=3, seed=4)
        reference = run_study(config)
        with Study(config) as study:
            streamed = list(study.iter_rounds())
            result = study.result()
        assert len(streamed) == 3
        for attr in ("mia_accuracy", "global_test_accuracy", "model_spread"):
            np.testing.assert_array_equal(
                reference.series(attr), result.series(attr)
            )
        assert reference.metadata == result.metadata

    def test_build_is_lazy_and_idempotent(self):
        study = Study(tiny_config())
        assert not hasattr(study, "simulator")  # nothing built yet
        study.build()
        simulator = study.simulator
        study.build()
        assert study.simulator is simulator
        study.close()

    def test_iter_rounds_yields_records_as_produced(self):
        with Study(tiny_config(rounds=3)) as study:
            rounds = study.iter_rounds()
            first = next(rounds)
            assert first.round_index == 0
            assert study.rounds_completed == 1
            assert len(study.result().rounds) == 1  # partial result

    def test_early_stop_on_predicate(self):
        with Study(tiny_config(rounds=3)) as study:
            for record in study.iter_rounds():
                if record.round_index == 1:
                    break  # abandon the generator mid-run
            result = study.result()
        assert [r.round_index for r in result.rounds] == [0, 1]

    def test_break_on_final_record_still_finalizes(self):
        """End-of-run bookkeeping must not depend on the caller
        advancing the generator past the last yield: with long message
        delays, leftover in-flight traffic must be tallied even when
        the consumer breaks on the final record."""
        config = tiny_config(rounds=2, delay_ticks=150)
        reference = run_study(config)
        assert reference.metadata["messages_undelivered"] > 0  # test setup
        with Study(config) as study:
            for record in study.iter_rounds():
                if record.round_index == config.rounds - 1:
                    break
            result = study.result()
        assert result.metadata == reference.metadata

    def test_iter_rounds_in_chunks(self):
        config = tiny_config(rounds=3)
        reference = run_study(config)
        with Study(config) as study:
            assert len(list(study.iter_rounds(rounds=2))) == 2
            assert len(list(study.iter_rounds())) == 1  # the remainder
            result = study.result()
        np.testing.assert_array_equal(
            reference.series("mia_accuracy"), result.series("mia_accuracy")
        )
        assert reference.metadata == result.metadata

    def test_iter_rounds_rejects_negative(self):
        with Study(tiny_config()) as study:
            with pytest.raises(ValueError):
                list(study.iter_rounds(rounds=-1))

    def test_close_is_idempotent_and_safe_unbuilt(self):
        study = Study(tiny_config())
        study.close()  # never built: must not raise
        study.build()
        study.close()
        study.close()

    def test_run_closes_the_session(self):
        config = tiny_config(executor="sharded", n_shards=2)
        study = Study(config)  # reprolint: allow[lifecycle-unmanaged] -- run() closes the session; that teardown is what this test asserts
        result = study.run()
        assert len(result.rounds) == config.rounds
        # After run(), the sharded executor is torn down.
        assert study.simulator._executor is None

    def test_build_failure_releases_simulator_resources(self, monkeypatch):
        """A construction step failing after the simulator exists must
        close it (shard workers, shared-memory segments), because
        close() is gated on the build having completed."""
        import repro.core.study as study_module

        def boom(*args, **kwargs):
            raise RuntimeError("observer boom")

        monkeypatch.setattr(study_module, "OmniscientObserver", boom)
        study = Study(tiny_config(executor="sharded", n_shards=2))  # reprolint: allow[lifecycle-unmanaged] -- the failing build() must clean up by itself; that is the regression under test
        with pytest.raises(RuntimeError, match="observer boom"):
            study.build()
        assert study.simulator.arena.shared_name is None  # segment freed
        assert study.simulator._executor is None

    def test_vulnerability_study_builds_eagerly(self):
        study = VulnerabilityStudy(tiny_config())
        assert hasattr(study, "simulator")  # compat: built on construction
        study.close()


class TestCanaryStudy:
    def test_canary_tpr_recorded(self):
        result = run_study(tiny_config(n_canaries=12))
        for record in result.rounds:
            assert record.canary_tpr_at_1_fpr is not None
            assert 0.0 <= record.canary_tpr_at_1_fpr <= 1.0

    def test_canaries_get_memorized(self):
        """With enough local epochs, canary TPR should be substantial
        ('just how powerful this attack is' — Section 3.5)."""
        result = run_study(
            tiny_config(rounds=4, local_epochs=4, n_canaries=12)
        )
        series = result.series("canary_tpr_at_1_fpr")
        assert np.nanmax(series) > 0.3


class TestDPStudy:
    def test_dp_run_records_epsilon(self):
        result = run_study(tiny_config(dp_epsilon=50.0, local_epochs=1))
        assert result.metadata["noise_multiplier"] > 0
        finals = [r.epsilon for r in result.rounds]
        assert all(e is not None and e >= 0 for e in finals)

    def test_spent_epsilon_does_not_exceed_target(self):
        """The per-node update cap makes the budget a hard guarantee."""
        result = run_study(tiny_config(dp_epsilon=25.0))
        assert result.rounds[-1].epsilon <= 25.0 * 1.001

    def test_budget_holds_for_base_gossip_too(self):
        """Base Gossip trains on receptions; the cap still binds."""
        result = run_study(
            tiny_config(dp_epsilon=25.0, protocol="base_gossip", rounds=3)
        )
        assert result.rounds[-1].epsilon <= 25.0 * 1.001

    def test_epsilon_grows_over_rounds(self):
        result = run_study(tiny_config(dp_epsilon=50.0, rounds=3))
        eps = [r.epsilon for r in result.rounds]
        assert eps[0] <= eps[-1]

    def test_tighter_budget_means_more_noise(self):
        tight = VulnerabilityStudy(tiny_config(dp_epsilon=5.0))
        loose = VulnerabilityStudy(tiny_config(dp_epsilon=50.0))
        try:
            assert (
                tight.protocol.trainer.config.dp.noise_multiplier
                > loose.protocol.trainer.config.dp.noise_multiplier
            )
        finally:
            tight.close()
            loose.close()


class TestLatencyStudy:
    def test_delayed_network_runs(self):
        result = run_study(tiny_config(delay_ticks=10, delay_jitter=5))
        assert len(result.rounds) == 2
        assert result.rounds[-1].messages_sent > 0

    def test_latency_does_not_break_determinism(self):
        import numpy as np

        a = run_study(tiny_config(delay_ticks=7, seed=21))
        b = run_study(tiny_config(delay_ticks=7, seed=21))
        np.testing.assert_allclose(
            a.series("mia_accuracy"), b.series("mia_accuracy")
        )


class TestCancelHook:
    """The thread-safe cancel hook the service layer drives."""

    def test_cancel_stops_at_next_round_boundary(self):
        with Study(tiny_config(rounds=4)) as study:
            rounds = study.iter_rounds()
            next(rounds)
            study.request_cancel()
            remaining = list(rounds)
        assert remaining == []
        assert study.rounds_completed == 1
        assert study.cancel_requested
        # The partial run is still a valid result.
        assert len(study.result().rounds) == 1

    def test_cancel_before_start_yields_nothing(self):
        with Study(tiny_config()) as study:
            study.request_cancel()
            assert list(study.iter_rounds()) == []
            assert study.rounds_completed == 0

    def test_cancel_from_another_thread(self):
        import threading

        started = threading.Event()
        with Study(tiny_config(rounds=4)) as study:
            def cancel_soon():
                started.wait(30)
                study.request_cancel()
            thread = threading.Thread(target=cancel_soon)
            thread.start()
            seen = 0
            for _ in study.iter_rounds():
                seen += 1
                started.set()
            thread.join()
        # The cancel lands at some boundary before the horizon's end...
        assert 1 <= seen <= 4
        # ...and a cancelled session never finalizes early-stop state,
        # so clear_cancel + iter_rounds resumes to the horizon.
        study2 = Study(tiny_config(rounds=4))
        with study2:
            rows = study2.iter_rounds()
            next(rows)
            study2.request_cancel()
            assert list(rows) == []
            study2.clear_cancel()
            assert not study2.cancel_requested
            total = 1 + len(list(study2.iter_rounds()))
        assert total == 4

    def test_cancelled_study_checkpoint_resumes_bit_identical(self, tmp_path):
        config = tiny_config(rounds=3)
        expected = run_study(config)

        with Study(config) as study:
            rounds = study.iter_rounds()
            next(rounds)
            study.request_cancel()
            assert list(rounds) == []
            path = study.checkpoint(tmp_path / "cancelled.ckpt")

        resumed = Study.resume(path)
        with resumed:
            for _ in resumed.iter_rounds():
                pass
            result = resumed.result()
        assert result.to_json() == expected.to_json()
