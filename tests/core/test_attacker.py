"""Tests for the omniscient observer."""

import numpy as np
import pytest

from repro.core import OmniscientObserver, StudyConfig, VulnerabilityStudy


def build_study(**overrides):
    base = dict(
        name="obs-test",
        dataset="purchase100",
        n_train=600,
        n_test=150,
        num_features=64,
        n_nodes=6,
        view_size=2,
        protocol="samo",
        rounds=2,
        train_per_node=24,
        test_per_node=12,
        mlp_hidden=(32, 16),
        local_epochs=1,
        batch_size=12,
        max_attack_samples=32,
        max_global_test=64,
    )
    base.update(overrides)
    return VulnerabilityStudy(StudyConfig(**base))


class TestObserver:
    def test_records_one_per_round(self):
        study = build_study(rounds=3)
        study.run()
        assert len(study.observer.records) == 3

    def test_evaluates_every_node(self):
        study = build_study()
        study.simulator.run(1, round_callback=study.observer)
        # Mean of per-node values implies all were evaluated; verify by
        # re-running and checking determinism.
        record = study.observer.records[0]
        assert record.round_index == 0
        assert 0.0 <= record.mia_accuracy <= 1.0

    def test_global_test_subsample_fixed_across_rounds(self):
        study = build_study()
        x_before = study.observer.x_global.copy()
        study.run()
        np.testing.assert_array_equal(study.observer.x_global, x_before)

    def test_canary_requires_base(self):
        study = build_study()
        with pytest.raises(ValueError):
            OmniscientObserver(
                study.model,
                study.global_test,
                canaries=object(),  # placeholder, base missing
                canary_base=None,
            )

    def test_canary_attack_scores_recorded(self):
        study = build_study(n_canaries=12, rounds=2)
        study.run()
        for record in study.observer.records:
            assert record.canary_tpr_at_1_fpr is not None

    def test_epsilon_fn_wired(self):
        study = build_study()
        study.observer.set_epsilon_fn(lambda r: 1.23)
        study.simulator.run(1, round_callback=study.observer)
        assert study.observer.records[0].epsilon == 1.23

    def test_subsampling_caps_attack_set(self):
        study = build_study(max_attack_samples=8)
        x, y = study.observer._subsample(
            np.zeros((100, 4)), np.zeros(100, dtype=int)
        )
        assert x.shape[0] == 8

    def test_subsampling_noop_when_small(self):
        study = build_study(max_attack_samples=200)
        x, y = study.observer._subsample(
            np.zeros((10, 4)), np.zeros(10, dtype=int)
        )
        assert x.shape[0] == 10


class TestModelSpread:
    def test_spread_recorded_per_round(self):
        study = build_study(rounds=2)
        study.run()
        for record in study.observer.records:
            assert record.model_spread >= 0.0

    def test_spread_zero_at_shared_init(self):
        """Before any training all nodes hold the same model."""
        study = build_study()
        spread = study.observer._model_spread(study.simulator)
        assert spread == pytest.approx(0.0, abs=1e-12)

    def test_spread_positive_after_training(self):
        study = build_study(rounds=2)
        study.run()
        assert study.observer.records[-1].model_spread > 0.0

    def test_spread_matches_manual_computation(self):
        import numpy as np
        from repro.nn.serialize import state_to_vector

        study = build_study(rounds=1)
        study.run()
        vectors = np.stack(
            [state_to_vector(n.state) for n in study.simulator.nodes]
        )
        center = vectors.mean(axis=0)
        expected = float(np.linalg.norm(vectors - center, axis=1).mean())
        assert study.observer.records[-1].model_spread == pytest.approx(expected)


class TestNodeRecords:
    def test_off_by_default(self):
        study = build_study(rounds=2)
        study.run()
        assert study.observer.node_records == []

    def test_kept_when_requested(self):
        study = build_study(rounds=2, keep_node_records=True)
        study.run()
        assert len(study.observer.node_records) == 2
        for per_round in study.observer.node_records:
            assert len(per_round) == 6  # one evaluation per node
            node_ids = [e.node_id for e in per_round]
            assert node_ids == sorted(node_ids)

    def test_per_node_values_average_to_round_record(self):
        import numpy as np

        study = build_study(rounds=1, keep_node_records=True)
        study.run()
        per_node = study.observer.node_records[0]
        record = study.observer.records[0]
        assert record.mia_accuracy == pytest.approx(
            np.mean([e.mia_accuracy for e in per_node])
        )


class TestBatchedObservation:
    """The row-batch observation path vs the legacy per-node loop."""

    def _pair(self, **overrides):
        batched = build_study(**overrides)
        legacy = build_study(eval_batch=-1, **overrides)
        batched.run()
        legacy.run()
        return batched.observer.records, legacy.observer.records

    def _assert_equivalent(self, batched, legacy, tol):
        assert len(batched) == len(legacy)
        for rb, rl in zip(batched, legacy):
            assert rb.global_test_accuracy == pytest.approx(
                rl.global_test_accuracy, abs=tol
            )
            assert rb.local_train_accuracy == pytest.approx(
                rl.local_train_accuracy, abs=tol
            )
            assert rb.mia_accuracy == pytest.approx(rl.mia_accuracy, abs=tol)
            assert rb.mia_tpr_at_1_fpr == pytest.approx(
                rl.mia_tpr_at_1_fpr, abs=tol
            )
            assert rb.mia_auc == pytest.approx(rl.mia_auc, abs=tol)
            assert rb.model_spread == pytest.approx(rl.model_spread, rel=1e-9)

    def test_equivalent_float64(self):
        batched, legacy = self._pair(rounds=2)
        self._assert_equivalent(batched, legacy, tol=1e-9)

    def test_equivalent_float32(self):
        """Same run in the float32 arena: both paths score in float32
        and agree within dtype tolerance."""
        batched, legacy = self._pair(rounds=2, arena_dtype="float32")
        self._assert_equivalent(batched, legacy, tol=1e-4)

    def test_equivalent_with_unbalanced_attack_sets(self):
        """train != test sizes exercise the pre-drawn balancing path."""
        batched, legacy = self._pair(
            rounds=1, train_per_node=24, test_per_node=8
        )
        self._assert_equivalent(batched, legacy, tol=1e-9)

    def test_equivalent_with_canaries(self):
        batched, legacy = self._pair(rounds=2, n_canaries=10)
        for rb, rl in zip(batched, legacy):
            assert rb.canary_tpr_at_1_fpr == pytest.approx(
                rl.canary_tpr_at_1_fpr, abs=1e-9
            )

    def test_eval_batch_blocking_changes_nothing(self):
        full = build_study(rounds=1)
        blocked = build_study(rounds=1, eval_batch=2)
        full.run()
        blocked.run()
        self._assert_equivalent(
            full.observer.records, blocked.observer.records, tol=1e-12
        )

    def test_equivalent_on_dict_engine(self):
        """The packed state-matrix path of the legacy engine."""
        batched, legacy = self._pair(rounds=1, engine="dict")
        self._assert_equivalent(batched, legacy, tol=1e-9)

    def test_eval_batch_validation(self):
        with pytest.raises(ValueError):
            build_study(eval_batch=-2)


class TestShardedObservation:
    """Observation rides the shard workers under executor="sharded"."""

    def _records_sharded(self, **overrides):
        study = build_study(executor="sharded", n_shards=2, **overrides)
        study.build()
        try:
            for _ in study.iter_rounds():
                pass
            executor = study.simulator.executor()
            # The observer really went through the shard workers.
            assert getattr(executor, "_observe_ready", False) is True
            return list(study.observer.records)
        finally:
            study.close()

    def _assert_close(self, sharded, reference, tol=1e-9):
        assert len(sharded) == len(reference)
        for rs, rr in zip(sharded, reference):
            assert rs.global_test_accuracy == pytest.approx(
                rr.global_test_accuracy, abs=tol
            )
            assert rs.local_train_accuracy == pytest.approx(
                rr.local_train_accuracy, abs=tol
            )
            assert rs.mia_accuracy == pytest.approx(rr.mia_accuracy, abs=tol)
            assert rs.mia_tpr_at_1_fpr == pytest.approx(
                rr.mia_tpr_at_1_fpr, abs=tol
            )
            assert rs.mia_auc == pytest.approx(rr.mia_auc, abs=tol)
            assert rs.model_spread == pytest.approx(
                rr.model_spread, rel=1e-9
            )

    def test_matches_single_process_observation(self):
        sharded = self._records_sharded(seed=3)
        reference = build_study(seed=3)
        reference.run()
        self._assert_close(sharded, reference.observer.records)

    def test_matches_with_canaries_and_unbalanced_sets(self):
        """Balancing draws happen in the parent; the canary attack
        stays on the parent's batched path — both must line up."""
        overrides = dict(
            seed=5, n_canaries=6, train_per_node=24, test_per_node=8
        )
        sharded = self._records_sharded(**overrides)
        reference = build_study(**overrides)
        reference.run()
        self._assert_close(sharded, reference.observer.records)
        for rs, rr in zip(sharded, reference.observer.records):
            assert rs.canary_tpr_at_1_fpr == pytest.approx(
                rr.canary_tpr_at_1_fpr, abs=1e-9
            )
