"""Tests for the grouped configuration layer (repro.core.config)."""

import json

import pytest

from repro import StudyConfig
from repro.core.config import (
    FLAT_TO_GROUP,
    GROUPS,
    DataConfig,
    ExecutionConfig,
    ModelConfig,
    PrivacyConfig,
    TopologyConfig,
    group_field_names,
)


class TestDecomposition:
    def test_every_flat_field_belongs_to_exactly_one_group(self):
        flat = {
            name
            for name in StudyConfig.__dataclass_fields__
            if name not in ("name", "seed")
        }
        grouped = set(FLAT_TO_GROUP)
        assert flat == grouped
        counts = {}
        for cls in GROUPS.values():
            for field_name in group_field_names(cls):
                counts[field_name] = counts.get(field_name, 0) + 1
        assert all(count == 1 for count in counts.values())

    def test_group_defaults_match_flat_defaults(self):
        cfg = StudyConfig()
        for group_name, cls in GROUPS.items():
            group = cls()
            for field_name in group_field_names(cls):
                assert getattr(group, field_name) == getattr(cfg, field_name)

    def test_group_properties_reflect_flat_values(self):
        cfg = StudyConfig(n_nodes=32, dp_epsilon=5.0, dataset="purchase100")
        assert cfg.topology.n_nodes == 32
        assert cfg.privacy.dp_epsilon == 5.0
        assert cfg.data.dataset == "purchase100"
        assert isinstance(cfg.model, ModelConfig)
        assert isinstance(cfg.execution, ExecutionConfig)

    def test_from_groups_equals_flat_construction(self):
        grouped = StudyConfig.from_groups(
            name="x",
            seed=3,
            data=DataConfig(dataset="purchase100", num_features=64),
            topology=TopologyConfig(n_nodes=8, rounds=2),
            privacy=PrivacyConfig(dp_epsilon=10.0),
        )
        flat = StudyConfig(
            name="x",
            seed=3,
            dataset="purchase100",
            num_features=64,
            n_nodes=8,
            rounds=2,
            dp_epsilon=10.0,
        )
        assert grouped == flat

    def test_from_groups_rejects_wrong_group_type(self):
        with pytest.raises(ValueError, match="DataConfig"):
            StudyConfig.from_groups(data=ModelConfig())


class TestSerialization:
    def test_to_dict_is_grouped_and_json_ready(self):
        cfg = StudyConfig(name="s", n_nodes=8, mlp_hidden=(32, 16))
        payload = cfg.to_dict()
        assert set(payload) == {"name", "seed", *GROUPS}
        assert payload["topology"]["n_nodes"] == 8
        assert payload["model"]["mlp_hidden"] == [32, 16]  # JSON-able
        json.dumps(payload)  # must not raise

    def test_json_round_trip(self):
        cfg = StudyConfig(
            name="rt",
            dataset="purchase100",
            mlp_hidden=(32, 16),
            beta=0.3,
            dp_epsilon=25.0,
            executor="sharded",
            n_shards=2,
            seed=9,
        )
        restored = StudyConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert restored == cfg
        assert restored.mlp_hidden == (32, 16)  # tuple restored

    def test_from_dict_accepts_flat_keys(self):
        cfg = StudyConfig.from_dict({"name": "f", "n_nodes": 8, "rounds": 3})
        assert cfg == StudyConfig(name="f", n_nodes=8, rounds=3)

    def test_from_dict_rejects_unknown_keys_listing_valid(self):
        with pytest.raises(ValueError, match="n_nodes"):
            StudyConfig.from_dict({"nodes": 8})
        with pytest.raises(ValueError, match="dataset"):
            DataConfig.from_dict({"datset": "cifar10"})

    def test_group_round_trip(self):
        group = TopologyConfig(n_nodes=12, dynamic=True, drop_prob=0.1)
        assert TopologyConfig.from_dict(group.to_dict()) == group


class TestOverrides:
    def test_flat_override_unknown_key_lists_valid_fields(self):
        cfg = StudyConfig()
        with pytest.raises(ValueError) as excinfo:
            cfg.with_overrides(nodes=8)
        message = str(excinfo.value)
        assert "nodes" in message
        assert "n_nodes" in message  # the valid spelling is suggested

    def test_group_override_with_instance_replaces_group(self):
        cfg = StudyConfig(dp_epsilon=50.0, dp_clip_norm=2.0)
        out = cfg.with_overrides(privacy=PrivacyConfig(dp_epsilon=5.0))
        assert out.dp_epsilon == 5.0
        assert out.dp_clip_norm == 1.0  # instance replaces the whole group

    def test_group_override_with_dict_merges(self):
        cfg = StudyConfig(dp_epsilon=50.0, dp_clip_norm=2.0)
        out = cfg.with_overrides(privacy={"dp_epsilon": 5.0})
        assert out.dp_epsilon == 5.0
        assert out.dp_clip_norm == 2.0  # dict merges into the group

    def test_group_override_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="dp_epsilon"):
            StudyConfig().with_overrides(privacy={"epsilon": 5.0})

    def test_group_with_overrides_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="n_nodes"):
            TopologyConfig().with_overrides(node_count=8)

    def test_mixed_flat_and_group_overrides(self):
        out = StudyConfig().with_overrides(
            rounds=7, execution=ExecutionConfig(executor="batched")
        )
        assert out.rounds == 7
        assert out.executor == "batched"


class TestValidation:
    @pytest.mark.parametrize(
        "cls, kwargs",
        [
            (DataConfig, dict(n_train=0)),
            (DataConfig, dict(beta=-1.0)),
            (ModelConfig, dict(learning_rate=0.0)),
            (ModelConfig, dict(lr_decay=0.0)),
            (ModelConfig, dict(batch_size=0)),
            (TopologyConfig, dict(n_nodes=1)),
            (TopologyConfig, dict(view_size=0)),
            (TopologyConfig, dict(drop_prob=1.0)),
            (TopologyConfig, dict(delay_ticks=-1)),
            (ExecutionConfig, dict(engine="numpy")),
            (ExecutionConfig, dict(executor="thread")),
            (ExecutionConfig, dict(arena_dtype="float16")),
            (ExecutionConfig, dict(train_batch=-2)),
            (PrivacyConfig, dict(dp_epsilon=-1.0)),
            (PrivacyConfig, dict(dp_delta=0.0)),
            (PrivacyConfig, dict(n_canaries=-1)),
        ],
    )
    def test_group_rejects_bad_values(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls(**kwargs)

    def test_flat_construction_runs_group_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(executor="thread")
        with pytest.raises(ValueError):
            StudyConfig(n_nodes=1)

    def test_mlp_hidden_list_normalized_to_tuple(self):
        assert StudyConfig(mlp_hidden=[64, 32]).mlp_hidden == (64, 32)
        assert ModelConfig(mlp_hidden=[64, 32]).mlp_hidden == (64, 32)
