"""Checkpoint/resume equivalence for Study sessions.

The contract: a study checkpointed at round k and resumed must
reproduce the uninterrupted ``run_study`` RunResult bit-identically on
float64 arenas — per executor (serial / batched / sharded), per
engine, and through the failure-injection and DP paths that exercise
every captured RNG stream.
"""

import pathlib

import numpy as np
import pytest

from repro import Study, StudyConfig, run_study

SERIES = (
    "global_test_accuracy",
    "local_train_accuracy",
    "mia_accuracy",
    "mia_tpr_at_1_fpr",
    "mia_auc",
    "canary_tpr_at_1_fpr",
    "model_spread",
    "messages_sent",
    "epsilon",
)


def tiny_config(**overrides):
    base = dict(
        name="ckpt",
        dataset="purchase100",
        n_train=600,
        n_test=150,
        num_features=64,
        n_nodes=6,
        view_size=2,
        protocol="samo",
        rounds=3,
        train_per_node=24,
        test_per_node=12,
        mlp_hidden=(32, 16),
        local_epochs=1,
        batch_size=12,
        max_attack_samples=32,
        max_global_test=64,
        seed=13,
    )
    base.update(overrides)
    return StudyConfig(**base)


def checkpoint_at_round_then_finish(config, tmp_path, at_round=1):
    """Run ``at_round`` rounds, checkpoint, resume in a fresh session,
    finish, and return the resumed RunResult."""
    path = tmp_path / "study.ckpt"
    study = Study(config).build()
    rounds = study.iter_rounds()
    for _ in range(at_round):
        next(rounds)
    study.checkpoint(path)
    study.close()
    resumed = Study.resume(path)
    assert resumed.rounds_completed == at_round
    try:
        remaining = list(resumed.iter_rounds())
        assert len(remaining) == config.rounds - at_round
        return resumed.result()
    finally:
        resumed.close()


def assert_results_identical(reference, resumed):
    for attr in SERIES:
        np.testing.assert_array_equal(
            reference.series(attr), resumed.series(attr), err_msg=attr
        )
    assert reference.metadata == resumed.metadata
    assert [r.round_index for r in resumed.rounds] == list(
        range(len(reference.rounds))
    )


class TestCheckpointResumeEquivalence:
    @pytest.mark.parametrize(
        "executor_overrides",
        [
            dict(executor="serial"),
            dict(executor="process", n_workers=2),
            dict(executor="batched"),
            dict(executor="sharded", n_shards=2),
        ],
        ids=["serial", "process", "batched", "sharded"],
    )
    def test_bit_identical_per_executor(self, tmp_path, executor_overrides):
        config = tiny_config(**executor_overrides)
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_dict_engine_with_lr_decay(self, tmp_path):
        """The dict engine books lr_decay sessions on the shared
        trainer; the checkpoint must carry that too."""
        config = tiny_config(engine="dict", lr_decay=0.9)
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_with_failures_and_latency(self, tmp_path):
        """Drops, churn and jitter all draw from the simulator RNG, and
        delayed messages sit in the in-flight heap across the
        checkpoint boundary."""
        config = tiny_config(
            drop_prob=0.1, failure_prob=0.05, delay_ticks=7, delay_jitter=3
        )
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_dynamic_topology(self, tmp_path):
        """PeerSwap mutates sampler views; they must survive resume."""
        config = tiny_config(dynamic=True)
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_dp_study(self, tmp_path):
        """Epsilon accounting reads per-node update counters, which the
        checkpoint restores; sigma recalibrates deterministically."""
        config = tiny_config(dp_epsilon=25.0)
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_canary_study(self, tmp_path):
        config = tiny_config(n_canaries=8)
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_dropout_mask_streams(self, tmp_path):
        """Counter-based mask streams are pure functions of
        (node, session, step): no mask state crosses the checkpoint, so
        resumed training redraws exactly the masks the uninterrupted
        run would have drawn."""
        config = tiny_config(dropout=0.25, executor="batched")
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_bit_identical_dp_dropout_sharded(self, tmp_path):
        """The full fast-path stack at once: vectorized DP-SGD with
        stream dropout on shard workers, through a resume."""
        config = tiny_config(
            dp_epsilon=25.0, dropout=0.25, executor="sharded", n_shards=2
        )
        reference = run_study(config)
        resumed = checkpoint_at_round_then_finish(config, tmp_path)
        assert_results_identical(reference, resumed)

    def test_checkpoint_at_every_boundary(self, tmp_path):
        """Any round boundary is a valid checkpoint, including round 0
        (before any round ran) and the final round."""
        config = tiny_config(rounds=2)
        reference = run_study(config)
        for at_round in range(3):
            resumed = checkpoint_at_round_then_finish(
                config, tmp_path, at_round=at_round
            )
            assert_results_identical(reference, resumed)


class TestCheckpointFile:
    def test_resume_restores_config(self, tmp_path):
        config = tiny_config(dp_epsilon=25.0, mlp_hidden=(16, 8))
        path = tmp_path / "c.ckpt"
        with Study(config) as study:
            study.checkpoint(path)
        resumed = Study.resume(path)
        try:
            assert resumed.config == config
        finally:
            resumed.close()

    def test_checkpoint_write_is_atomic(self, tmp_path):
        """Overwriting an existing checkpoint goes through a temp file
        + rename, so the previous good file is never half-written; the
        temp file must not linger."""
        path = tmp_path / "c.ckpt"
        with Study(tiny_config(rounds=2)) as study:
            rounds = study.iter_rounds()
            next(rounds)
            study.checkpoint(path)
            first = path.read_bytes()
            next(rounds)
            study.checkpoint(path)  # overwrite in place
        assert path.read_bytes() != first
        assert not (tmp_path / "c.ckpt.tmp").exists()
        resumed = Study.resume(path)
        try:
            assert resumed.rounds_completed == 2
        finally:
            resumed.close()

    def test_resume_failure_releases_simulator_resources(self, tmp_path):
        """A corrupt state dict raising mid-restore must close the
        freshly built simulator (shared-memory segment included) —
        the caller never receives a Study to close."""
        import pickle

        config = tiny_config(executor="sharded", n_shards=2)
        path = tmp_path / "c.ckpt"
        with Study(config) as study:
            rounds = study.iter_rounds()
            next(rounds)
            study.checkpoint(path)
        payload = pickle.loads(path.read_bytes())
        payload["simulator"]["nodes"] = "corrupt"
        path.write_bytes(pickle.dumps(payload))
        shm = pathlib.Path("/dev/shm")
        before = set(p.name for p in shm.iterdir()) if shm.is_dir() else set()
        with pytest.raises(Exception):
            Study.resume(path)
        after = set(p.name for p in shm.iterdir()) if shm.is_dir() else set()
        assert after <= before  # no leaked segment

    def test_rejects_non_checkpoint_file(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        import pickle

        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValueError, match="not a study checkpoint"):
            Study.resume(path)

    def test_resumed_finished_study_yields_nothing_more(self, tmp_path):
        config = tiny_config(rounds=2)
        path = tmp_path / "done.ckpt"
        with Study(config) as study:
            records = list(study.iter_rounds())
            study.checkpoint(path)
            reference = study.result()
        resumed = Study.resume(path)
        try:
            assert list(resumed.iter_rounds()) == []
            assert len(resumed.result().rounds) == len(records)
            assert_results_identical(reference, resumed.result())
        finally:
            resumed.close()
