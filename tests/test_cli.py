"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTables:
    def test_tables_prints_both(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "purchase100" in out


class TestStudy:
    def test_minimal_run(self, capsys):
        code = main(["study", "--rounds", "2", "--nodes", "6"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip() and l.lstrip()[0].isdigit()]
        assert len(lines) == 2  # one row per round

    def test_writes_json_and_csv(self, tmp_path, capsys):
        out_json = tmp_path / "run.json"
        out_csv = tmp_path / "run.csv"
        code = main([
            "study", "--rounds", "2", "--nodes", "6",
            "--out", str(out_json), "--csv", str(out_csv),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert len(payload["rounds"]) == 2
        assert out_csv.read_text().count("\n") >= 2

    def test_dynamic_flag_recorded(self, tmp_path):
        out_json = tmp_path / "run.json"
        main([
            "study", "--rounds", "1", "--nodes", "6", "--dynamic",
            "--out", str(out_json),
        ])
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["dynamic"] is True
        assert payload["metadata"]["sampler"] == "peerswap"

    def test_fresh_sampler_option(self, tmp_path):
        out_json = tmp_path / "run.json"
        main([
            "study", "--rounds", "1", "--nodes", "6", "--sampler", "fresh",
            "--out", str(out_json),
        ])
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["sampler"] == "fresh"

    def test_flat_engine_flag(self, tmp_path):
        out_json = tmp_path / "run.json"
        code = main([
            "study", "--rounds", "1", "--nodes", "6",
            "--engine", "flat", "--arena-dtype", "float32",
            "--out", str(out_json),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["engine"] == "flat"
        assert payload["metadata"]["executor"] == "serial"

    def test_sharded_executor_flags(self, tmp_path):
        out_json = tmp_path / "run.json"
        code = main([
            "study", "--rounds", "1", "--nodes", "6",
            "--executor", "sharded", "--shards", "2",
            "--shard-partition", "balanced",
            "--out", str(out_json),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["executor"] == "sharded"
        assert payload["metadata"]["n_shards"] == 2
        assert payload["metadata"]["shard_partition"] == "balanced"
        assert payload["metadata"]["n_workers"] == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["study", "--dataset", "imagenet"])


class TestFigure:
    def test_figure10_tiny(self, capsys):
        code = main(["figure", "--id", "10", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "curves" in out
        assert "static-2reg" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "--id", "99"])


class TestFigurePlot:
    def test_plot_flag_renders_chart(self, capsys):
        code = main(["figure", "--id", "10", "--scale", "tiny", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "o=static-2reg" in out
        assert "|" in out  # chart body
