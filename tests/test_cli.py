"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestTables:
    def test_tables_prints_both(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "purchase100" in out


class TestStudy:
    def test_minimal_run(self, capsys):
        code = main(["study", "--rounds", "2", "--nodes", "6"])
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip() and l.lstrip()[0].isdigit()]
        assert len(lines) == 2  # one row per round

    def test_writes_json_and_csv(self, tmp_path, capsys):
        out_json = tmp_path / "run.json"
        out_csv = tmp_path / "run.csv"
        code = main([
            "study", "--rounds", "2", "--nodes", "6",
            "--out", str(out_json), "--csv", str(out_csv),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert len(payload["rounds"]) == 2
        assert out_csv.read_text().count("\n") >= 2

    def test_dynamic_flag_recorded(self, tmp_path):
        out_json = tmp_path / "run.json"
        main([
            "study", "--rounds", "1", "--nodes", "6", "--dynamic",
            "--out", str(out_json),
        ])
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["dynamic"] is True
        assert payload["metadata"]["sampler"] == "peerswap"

    def test_fresh_sampler_option(self, tmp_path):
        out_json = tmp_path / "run.json"
        main([
            "study", "--rounds", "1", "--nodes", "6", "--sampler", "fresh",
            "--out", str(out_json),
        ])
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["sampler"] == "fresh"

    def test_flat_engine_flag(self, tmp_path):
        out_json = tmp_path / "run.json"
        code = main([
            "study", "--rounds", "1", "--nodes", "6",
            "--engine", "flat", "--arena-dtype", "float32",
            "--out", str(out_json),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["engine"] == "flat"
        assert payload["metadata"]["executor"] == "serial"

    def test_sharded_executor_flags(self, tmp_path):
        out_json = tmp_path / "run.json"
        code = main([
            "study", "--rounds", "1", "--nodes", "6",
            "--executor", "sharded", "--shards", "2",
            "--shard-partition", "balanced",
            "--out", str(out_json),
        ])
        assert code == 0
        payload = json.loads(out_json.read_text())
        assert payload["metadata"]["executor"] == "sharded"
        assert payload["metadata"]["n_shards"] == 2
        assert payload["metadata"]["shard_partition"] == "balanced"
        assert payload["metadata"]["n_workers"] == 0

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            main(["study", "--dataset", "imagenet"])


class TestFigure:
    def test_figure10_tiny(self, capsys):
        code = main(["figure", "--id", "10", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "curves" in out
        assert "static-2reg" in out

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "--id", "99"])


class TestFigurePlot:
    def test_plot_flag_renders_chart(self, capsys):
        code = main(["figure", "--id", "10", "--scale", "tiny", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "o=static-2reg" in out
        assert "|" in out  # chart body


class TestStudyCheckpointResume:
    def _cli_config(self, rounds=3):
        from repro.experiments import scaled_config

        return scaled_config(
            "purchase100", "tiny",
            name="cli-purchase100", n_nodes=6, rounds=rounds,
            protocol="samo", dynamic=False,
        )

    def test_checkpoint_flag_writes_resumable_file(self, tmp_path, capsys):
        ck = tmp_path / "run.ckpt"
        code = main([
            "study", "--rounds", "2", "--nodes", "6",
            "--checkpoint", str(ck),
        ])
        assert code == 0
        assert ck.exists()
        from repro import Study

        resumed = Study.resume(ck)
        assert resumed.rounds_completed == 2
        resumed.close()

    def test_resume_continues_bit_identically(self, tmp_path):
        ref_json = tmp_path / "ref.json"
        assert main([
            "study", "--rounds", "3", "--nodes", "6", "--out", str(ref_json),
        ]) == 0
        # Interrupt the same study at round 1 via the session API, then
        # let the CLI finish it from the checkpoint.
        from repro import Study

        study = Study(self._cli_config()).build()
        rounds = study.iter_rounds()
        next(rounds)
        ck = tmp_path / "run.ckpt"
        study.checkpoint(ck)
        study.close()
        resumed_json = tmp_path / "resumed.json"
        assert main([
            "study", "--resume", str(ck), "--out", str(resumed_json),
        ]) == 0
        assert json.loads(ref_json.read_text()) == json.loads(
            resumed_json.read_text()
        )

    def test_out_json_round_trips_through_runresult(self, tmp_path):
        """Regression for the CLI writers: --out is RunResult.to_json
        (stable bytes) and --csv rows match the records."""
        import csv as csv_module

        from repro.metrics.records import RunResult

        out_json = tmp_path / "run.json"
        out_csv = tmp_path / "run.csv"
        assert main([
            "study", "--rounds", "2", "--nodes", "6",
            "--out", str(out_json), "--csv", str(out_csv),
        ]) == 0
        result = RunResult.from_json(out_json.read_text())
        assert len(result.rounds) == 2
        assert result.to_json() == out_json.read_text()
        with out_csv.open() as handle:
            rows = list(csv_module.DictReader(handle))
        assert len(rows) == 2
        for row, record in zip(rows, result.rounds):
            assert int(row["round_index"]) == record.round_index
            assert float(row["mia_accuracy"]) == record.mia_accuracy
            assert float(row["model_spread"]) == record.model_spread


class TestServe:
    def test_serve_parses_and_forwards_options(self, monkeypatch):
        captured = {}

        def fake_serve(**kwargs):
            captured.update(kwargs)
            return 0

        import repro.service

        monkeypatch.setattr(repro.service, "serve", fake_serve)
        code = main([
            "serve", "--host", "0.0.0.0", "--port", "0",
            "--job-workers", "3", "--rate-capacity", "7",
            "--rate-refill", "1.5", "--cache-entries", "9",
            "--checkpoint-dir", "/tmp/ck", "--state-dir", "/tmp/state",
        ])
        assert code == 0
        assert captured == {
            "host": "0.0.0.0",
            "port": 0,
            "job_workers": 3,
            "rate_capacity": 7,
            "rate_refill": 1.5,
            "cache_entries": 9,
            "checkpoint_dir": "/tmp/ck",
            "state_dir": "/tmp/state",
        }

    def test_serve_defaults(self, monkeypatch):
        captured = {}

        def fake_serve(**kwargs):
            captured.update(kwargs)
            return 0

        import repro.service

        monkeypatch.setattr(repro.service, "serve", fake_serve)
        assert main(["serve"]) == 0
        assert captured["host"] == "127.0.0.1"
        assert captured["port"] == 8000
        assert captured["checkpoint_dir"] is None
        assert captured["state_dir"] is None


class TestCampaign:
    def test_grid_campaign_runs_and_persists(self, tmp_path, capsys):
        out_dir = tmp_path / "camp"
        summary = tmp_path / "summary.csv"
        code = main([
            "campaign", "--dataset", "purchase100", "--scale", "tiny",
            "--set", "rounds=2", "--set", "n_nodes=6",
            "--grid", "seed=0,1", "--jobs", "1",
            "--out-dir", str(out_dir), "--summary", str(summary),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 2 studies" in out
        result_files = sorted(
            p.name for p in out_dir.glob("*.json") if not p.name.startswith(".")
        )
        assert len(result_files) == 2
        assert (out_dir / ".campaign-manifest.json").exists()
        assert summary.read_text().count("\n") == 3  # header + 2 studies

    def test_campaign_resumes_from_out_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "camp"
        args = [
            "campaign", "--dataset", "purchase100", "--scale", "tiny",
            "--set", "rounds=2", "--set", "n_nodes=6",
            "--grid", "seed=0", "--jobs", "1", "--out-dir", str(out_dir),
        ]
        assert main(args) == 0
        (path,) = (
            p for p in out_dir.glob("*.json") if not p.name.startswith(".")
        )
        mtime = path.stat().st_mtime_ns
        assert main(args) == 0  # second run loads from disk
        assert path.stat().st_mtime_ns == mtime

    def test_campaign_without_grid_errors(self, capsys):
        assert main(["campaign"]) == 2
        assert "--grid" in capsys.readouterr().err

    def test_bad_grid_spec_errors(self, capsys):
        assert main(["campaign", "--grid", "seed"]) == 2
