"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import ConstantLR, Parameter, SGD, StepLR


def make_param(value=1.0, grad=1.0):
    p = Parameter(np.array([value]))
    p.accumulate(np.array([grad]))
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0, grad=0.5)
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_weight_decay_added_to_gradient(self):
        p = make_param(1.0, grad=0.0)
        SGD([p], lr=0.1, weight_decay=0.1).step()
        # grad_eff = 0 + 0.1 * 1.0 -> p = 1 - 0.1*0.1
        assert p.data[0] == pytest.approx(0.99)

    def test_momentum_accumulates(self):
        p = make_param(0.0, grad=1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # v = 1, p = -1
        assert p.data[0] == pytest.approx(-1.0)
        p.zero_grad()
        p.accumulate(np.array([1.0]))
        opt.step()  # v = 0.9 + 1 = 1.9, p = -2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_nesterov_differs_from_plain_momentum(self):
        p1 = make_param(0.0, grad=1.0)
        p2 = make_param(0.0, grad=1.0)
        SGD([p1], lr=1.0, momentum=0.9).step()
        SGD([p2], lr=1.0, momentum=0.9, nesterov=True).step()
        assert p1.data[0] != p2.data[0]

    def test_skips_frozen_params(self):
        p = make_param(1.0, grad=1.0)
        p.requires_grad = False
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_reset_state_clears_velocity(self):
        p = make_param(0.0, grad=1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()
        opt.reset_state()
        p.zero_grad()
        p.accumulate(np.array([1.0]))
        opt.step()
        # Without history, second step is plain -1 again.
        assert p.data[0] == pytest.approx(-2.0)

    def test_zero_grad(self):
        p = make_param(0.0, grad=1.0)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert np.all(p.grad == 0)

    def test_rejects_bad_hyperparams(self):
        p = make_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=-1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, nesterov=True)

    def test_converges_on_quadratic(self):
        """SGD minimizes f(x) = (x - 3)^2."""
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            p.accumulate(2 * (p.data - 3.0))
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-4)


class TestSchedules:
    def test_constant_keeps_lr(self):
        opt = SGD([make_param()], lr=0.5)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.5

    def test_step_lr_decays(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_step_lr_rejects_bad_step(self):
        with pytest.raises(ValueError):
            StepLR(SGD([make_param()], lr=1.0), step_size=0)
