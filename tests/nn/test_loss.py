"""Tests for loss functions, including gradient checks."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss


class TestCrossEntropy:
    def test_uniform_logits_give_log_c(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.array([0, 1, 2, 3])
        assert loss(logits, labels) == pytest.approx(np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert loss(logits, labels) == pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_finite_differences(self, rng, fd_grad):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 0, 4])

        def scalar():
            return loss.forward(logits, labels)

        numeric = fd_grad(scalar, logits)
        loss.forward(logits, labels)
        analytic = loss.backward()
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(4, 6))
        loss.forward(logits, np.array([0, 1, 2, 3]))
        grad = loss.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_label_smoothing_increases_loss_on_confident_preds(self):
        logits = np.array([[50.0, 0.0]])
        labels = np.array([0])
        plain = CrossEntropyLoss()(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.1)(logits, labels)
        assert smoothed > plain

    def test_label_smoothing_gradient(self, rng, fd_grad):
        loss = CrossEntropyLoss(label_smoothing=0.2)
        logits = rng.normal(size=(2, 4))
        labels = np.array([0, 3])

        def scalar():
            return loss.forward(logits, labels)

        numeric = fd_grad(scalar, logits)
        loss.forward(logits, labels)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-7)

    def test_rejects_bad_shapes(self):
        loss = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3, 4)), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss(np.zeros((2, 3)), np.array([0]))

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestMSE:
    def test_zero_for_equal_inputs(self, rng):
        x = rng.normal(size=(3, 3))
        assert MSELoss()(x, x.copy()) == 0.0

    def test_value(self):
        loss = MSELoss()
        assert loss(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(2.5)

    def test_gradient_matches_finite_differences(self, rng, fd_grad):
        loss = MSELoss()
        pred = rng.normal(size=(4, 2))
        target = rng.normal(size=(4, 2))

        def scalar():
            return loss.forward(pred, target)

        numeric = fd_grad(scalar, pred)
        loss.forward(pred, target)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-7)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(np.zeros(2), np.zeros(3))


class TestDtypePreservation:
    """The float32 audit: loss internals must not promote to float64."""

    def test_cross_entropy_backward_in_logits_dtype(self, rng):
        loss = CrossEntropyLoss(label_smoothing=0.1)
        logits = rng.normal(size=(4, 6)).astype(np.float32)
        labels = np.array([0, 1, 2, 3])
        value = loss.forward(logits, labels)
        assert isinstance(value, float)
        assert loss.backward().dtype == np.float32
        # float64 logits keep the float64 path untouched.
        loss.forward(logits.astype(np.float64), labels)
        assert loss.backward().dtype == np.float64

    def test_cross_entropy_f32_close_to_f64(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(8, 5))
        labels = rng.integers(0, 5, size=8)
        loss.forward(logits, labels)
        g64 = loss.backward()
        loss.forward(logits.astype(np.float32), labels)
        np.testing.assert_allclose(loss.backward(), g64, atol=1e-6)

    def test_mse_preserves_float32(self, rng):
        loss = MSELoss()
        pred = rng.normal(size=(3, 2)).astype(np.float32)
        target = rng.normal(size=(3, 2)).astype(np.float32)
        loss.forward(pred, target)
        assert loss.backward().dtype == np.float32

    def test_mse_promotes_integer_inputs(self):
        loss = MSELoss()
        assert loss(np.array([1, 2]), np.array([0, 0])) == pytest.approx(2.5)
        assert loss.backward().dtype == np.float64


class TestBatchedCrossEntropyGrad:
    """Blocked loss vs the scalar loss, row for row."""

    def test_matches_scalar_loss_per_row(self, rng):
        from repro.nn import batched_cross_entropy_grad

        logits = rng.normal(size=(3, 5, 7))
        labels = rng.integers(0, 7, size=(3, 5))
        losses, grad = batched_cross_entropy_grad(
            logits, labels, label_smoothing=0.2
        )
        scalar = CrossEntropyLoss(label_smoothing=0.2)
        for b in range(3):
            assert losses[b] == scalar.forward(logits[b], labels[b])
            np.testing.assert_array_equal(grad[b], scalar.backward())

    def test_block_dtype_and_loss_skip(self, rng):
        from repro.nn import batched_cross_entropy_grad

        logits = rng.normal(size=(2, 4, 3)).astype(np.float32)
        labels = rng.integers(0, 3, size=(2, 4))
        losses, grad = batched_cross_entropy_grad(
            logits, labels, with_losses=False
        )
        assert losses is None
        assert grad.dtype == np.float32

    def test_validation(self):
        from repro.nn import batched_cross_entropy_grad

        with pytest.raises(ValueError, match="B, N, C"):
            batched_cross_entropy_grad(np.zeros((2, 3)), np.zeros((2,)))
        with pytest.raises(ValueError, match="labels"):
            batched_cross_entropy_grad(
                np.zeros((2, 3, 4)), np.zeros((3, 2), dtype=int)
            )
        with pytest.raises(ValueError, match="label_smoothing"):
            batched_cross_entropy_grad(
                np.zeros((2, 3, 4)), np.zeros((2, 3), dtype=int),
                label_smoothing=1.0,
            )
        with pytest.raises(ValueError, match="range"):
            batched_cross_entropy_grad(
                np.zeros((1, 2, 3)), np.full((1, 2), 9)
            )
