"""Tests for stateless numerical helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(10, 7))
        probs = F.softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self, rng):
        logits = rng.normal(size=(5, 4))
        np.testing.assert_allclose(
            F.softmax(logits), F.softmax(logits + 100.0), atol=1e-12
        )

    def test_handles_large_logits(self):
        probs = F.softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] > 0.999

    @given(
        arrays(
            np.float64,
            (3, 5),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    def test_probabilities_in_unit_interval(self, logits):
        probs = F.softmax(logits)
        assert np.all(probs >= 0)
        assert np.all(probs <= 1)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(6, 9))
        np.testing.assert_allclose(
            F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-10
        )


class TestOneHot:
    def test_basic_encoding(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        expected = np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float)
        np.testing.assert_array_equal(out, expected)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestRelu:
    def test_clamps_negatives(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu(x), [0.0, 0.0, 2.0])

    def test_grad_is_indicator(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(F.relu_grad(x), [0.0, 0.0, 1.0])


class TestConvHelpers:
    def test_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_output_size_rejects_too_small(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, oh, ow = F.im2col(x, kernel=3, stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 3 * 9, 64)

    def test_im2col_identity_kernel1(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        cols, oh, ow = F.im2col(x, kernel=1, stride=1, padding=0)
        np.testing.assert_allclose(cols.reshape(1, 2, 4, 4), x)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> for random x, y."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = F.im2col(x, kernel=3, stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, kernel=3, stride=2, padding=1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_im2col_values_match_naive_patch_extraction(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols, oh, ow = F.im2col(x, kernel=2, stride=2, padding=0)
        # First patch is the top-left 2x2 block.
        np.testing.assert_allclose(cols[0, :, 0], x[0, 0, :2, :2].ravel())
