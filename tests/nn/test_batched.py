"""Tests for the batched forward/backward over parameter blocks.

The training half is an equivalence harness: for every Table-2 model
family, the blocked train-mode pass (``BatchedModel`` +
``batched_cross_entropy_grad`` + ``BatchedSGD`` via ``BatchedTrainer``)
must reproduce the per-row workspace path (``Module`` +
``CrossEntropyLoss`` + ``SGD`` via ``LocalTrainer``) on fixed seeds —
bit-exactly in float64, within rounding in float32.
"""

import numpy as np
import pytest

from repro.gossip.trainer import BatchedTrainer, LocalTrainer, TrainerConfig
from repro.nn.batched import (
    BatchedModel,
    batched_forward,
    parameter_column_runs,
    supports_batched_backward,
    supports_batched_forward,
)
from repro.nn.flat import StateLayout
from repro.nn.layers import Dense, Dropout, Module, ReLU, Sequential
from repro.nn.loss import CrossEntropyLoss, batched_cross_entropy_grad
from repro.nn.optim import SGD, BatchedSGD
from repro.nn.models import build_model
from repro.nn.serialize import get_state, set_state, state_to_vector
from repro.nn.tensor import Parameter

ARCHS = [
    ("mlp", dict(in_features=20, num_classes=7, hidden=(16, 8)), (9, 20)),
    ("cnn", dict(in_channels=3, image_size=8, num_classes=5, width=4), (9, 3, 8, 8)),
    ("resnet8", dict(in_channels=3, num_classes=6, width=4), (9, 3, 8, 8)),
]


def make_block(model, n_rows, rng):
    """Distinct random states for every row, packed and kept as dicts."""
    template = get_state(model)
    layout = StateLayout.from_state(template)
    params = np.empty((n_rows, layout.dim))
    states = []
    for b in range(n_rows):
        state = {
            k: rng.normal(size=v.shape) * 0.3
            + (1.0 if "running_var" in k else 0.0)
            for k, v in template.items()
        }
        states.append(state)
        layout.pack(state, out=params[b])
    return layout, params, states


class TestBatchedForward:
    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_matches_per_model_forward_shared_input(self, arch, kwargs, xshape):
        rng = np.random.default_rng(0)
        model = build_model(arch, **kwargs)
        layout, params, states = make_block(model, 4, rng)
        x = rng.normal(size=xshape)
        out = batched_forward(model, layout, params, x, shared=True)
        model.eval()
        for b, state in enumerate(states):
            set_state(model, state)
            np.testing.assert_allclose(
                out[b], model.forward(x), rtol=1e-9, atol=1e-9
            )

    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_matches_per_model_forward_per_model_inputs(self, arch, kwargs, xshape):
        rng = np.random.default_rng(1)
        model = build_model(arch, **kwargs)
        layout, params, states = make_block(model, 4, rng)
        xs = rng.normal(size=(4,) + xshape)
        out = batched_forward(model, layout, params, xs, shared=False)
        model.eval()
        for b, state in enumerate(states):
            set_state(model, state)
            np.testing.assert_allclose(
                out[b], model.forward(xs[b]), rtol=1e-9, atol=1e-9
            )

    def test_math_stays_in_block_dtype(self):
        """Float32 parameter blocks are scored in float32 — the arena
        dtype contract — even when the input arrives as float64."""
        rng = np.random.default_rng(2)
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout, params, _ = make_block(model, 3, rng)
        x = rng.normal(size=(5, 10))
        out32 = batched_forward(model, layout, params.astype(np.float32), x)
        assert out32.dtype == np.float32
        out64 = batched_forward(model, layout, params, x)
        assert out64.dtype == np.float64
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-4)

    def test_rejects_mismatched_block(self):
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout = StateLayout.from_model(model)
        with pytest.raises(ValueError, match="params"):
            batched_forward(model, layout, np.zeros((2, layout.dim + 1)),
                            np.zeros((3, 10)))

    def test_rejects_wrong_per_model_leading_dim(self):
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout = StateLayout.from_model(model)
        params = np.zeros((2, layout.dim))
        with pytest.raises(ValueError, match="leading size"):
            batched_forward(model, layout, params, np.zeros((3, 5, 10)),
                            shared=False)


TRAIN_CONFIG = TrainerConfig(
    learning_rate=0.05,
    momentum=0.9,
    weight_decay=5e-4,
    local_epochs=2,
    batch_size=5,
    label_smoothing=0.1,
    lr_decay=0.7,
)


def sample_shape(xshape):
    """Per-sample input shape of one eval-harness entry."""
    return xshape[1:]


def make_training_block(arch, kwargs, xshape, n_rows=4, n=12, seed=0):
    """Distinct states + per-row splits for one model family."""
    rng = np.random.default_rng(seed)
    model = build_model(arch, **kwargs)
    template = get_state(model)
    layout = StateLayout.from_state(template)
    params = np.empty((n_rows, layout.dim))
    states, xs, ys = [], [], []
    num_classes = kwargs["num_classes"]
    for b in range(n_rows):
        state = {
            k: v + 0.1 * rng.normal(size=v.shape)
            for k, v in template.items()
        }
        states.append(state)
        layout.pack(state, out=params[b])
        xs.append(rng.normal(size=(n,) + sample_shape(xshape)))
        ys.append(rng.integers(0, num_classes, size=n))
    return model, layout, params, states, xs, ys


class TestSupportsBatchedBackward:
    def test_table2_families_supported(self):
        for arch, kwargs, _ in ARCHS:
            assert supports_batched_backward(build_model(arch, **kwargs))

    def test_stochastic_dropout_modes(self):
        model = build_model(
            "mlp", in_features=10, num_classes=4, hidden=(8,)
        )
        assert supports_batched_backward(model)
        # Counter-based mask streams (the default) batch fine even with
        # p > 0; the stateful legacy generator does not.
        streamed = Sequential(Dense(10, 8), ReLU(), Dropout(0.3), Dense(8, 4))
        assert supports_batched_backward(streamed)
        legacy = Sequential(
            Dense(10, 8), ReLU(), Dropout(0.3, mode="legacy"), Dense(8, 4)
        )
        assert not supports_batched_backward(legacy)
        # p == 0 dropout is the identity and batches in either mode.
        inert = Sequential(
            Dense(10, 8), Dropout(0.0, mode="legacy"), Dense(8, 4)
        )
        assert supports_batched_backward(inert)

    def test_unknown_layer_rejected(self):
        class Weird(Module):
            def forward(self, x):
                return x

        assert not supports_batched_backward(Sequential(Dense(4, 2), Weird()))

    def test_batched_model_refuses_unsupported(self):
        layout = StateLayout.from_state({"w": np.zeros(1)})
        with pytest.raises(ValueError, match="batched backward"):
            BatchedModel(Sequential(Dropout(0.5, mode="legacy")), layout)


class TestParameterColumnRuns:
    def test_runs_cover_exactly_the_parameter_columns(self):
        model = build_model("resnet8", in_channels=3, num_classes=6, width=4)
        layout = StateLayout.from_model(model)
        runs = parameter_column_runs(layout)
        covered = np.zeros(layout.dim, dtype=bool)
        for start, stop in runs:
            assert not covered[start:stop].any()  # runs never overlap
            covered[start:stop] = True
        for slot in layout.slots:
            is_param = not slot.name.startswith("buffer:")
            assert covered[slot.offset : slot.offset + slot.size].all() == is_param

    def test_adjacent_parameter_slots_merge(self):
        layout = StateLayout.from_state(
            {"a": np.zeros(3), "b": np.zeros(2)}
        )
        assert parameter_column_runs(layout) == [(0, 5)]


class TestBatchedModelGradients:
    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_one_step_matches_per_model_backward(self, arch, kwargs, xshape):
        """Forward logits, loss values, parameter gradients and updated
        BatchNorm running statistics all match the per-model train-mode
        pass bit for bit (float64)."""
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, n_rows=3, n=6, seed=1
        )
        loss = CrossEntropyLoss(label_smoothing=0.1)
        serial_logits, serial_losses, serial_grads, serial_buffers = (
            [], [], [], []
        )
        for b, state in enumerate(states):
            set_state(model, state)
            model.train()
            logits = model.forward(xs[b])
            serial_losses.append(loss.forward(logits, ys[b]))
            model.zero_grad()
            model.backward(loss.backward())
            serial_logits.append(logits)
            serial_grads.append(
                {name: p.grad.copy() for name, p in model.named_parameters()}
            )
            serial_buffers.append(
                {
                    "buffer:" + name: buf.copy()
                    for name, buf in model.named_buffers()
                }
            )
        batched = BatchedModel(model, layout)
        logits = batched.forward(params, np.stack(xs))
        losses, grad = batched_cross_entropy_grad(
            logits, np.stack(ys), label_smoothing=0.1
        )
        grads = np.empty_like(params)
        batched.backward(grad, grads)
        for b in range(len(states)):
            np.testing.assert_array_equal(logits[b], serial_logits[b])
            assert losses[b] == serial_losses[b]
            for name, expected in serial_grads[b].items():
                slot = layout.slot(name)
                got = grads[b, slot.offset : slot.offset + slot.size]
                np.testing.assert_array_equal(
                    got.reshape(slot.shape), expected
                )
            # Training-mode BatchNorm updated each row's running stats
            # inside the parameter block.
            for name, expected in serial_buffers[b].items():
                slot = layout.slot(name)
                got = params[b, slot.offset : slot.offset + slot.size]
                np.testing.assert_array_equal(
                    got.reshape(slot.shape), expected
                )

    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_float32_backward_stays_float32(self, arch, kwargs, xshape):
        """No layer's backward may promote a float32 block to float64
        (regression: MaxPool's int64 tie counts used to)."""
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, n_rows=2, n=4, seed=7
        )
        params32 = params.astype(np.float32)
        batched = BatchedModel(model, layout)
        logits = batched.forward(params32, np.stack(xs))
        assert logits.dtype == np.float32
        _, grad = batched_cross_entropy_grad(logits, np.stack(ys))
        grads = np.empty_like(params32)
        gx = batched.backward(grad, grads)
        assert gx.dtype == np.float32

    def test_backward_before_forward_raises(self):
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout = StateLayout.from_model(model)
        batched = BatchedModel(model, layout)
        with pytest.raises(RuntimeError, match="before forward"):
            batched.backward(np.zeros((2, 3, 4)), np.zeros((2, layout.dim)))

    def test_forward_rejects_wrong_leading_dim(self):
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout = StateLayout.from_model(model)
        batched = BatchedModel(model, layout)
        with pytest.raises(ValueError, match="leading size"):
            batched.forward(np.zeros((2, layout.dim)), np.zeros((3, 5, 10)))


class TestBatchedSGD:
    def _block(self, b=3, dim=7):
        rng = np.random.default_rng(0)
        return rng.normal(size=(b, dim)), rng.normal(size=(b, dim))

    def test_matches_serial_sgd_row_for_row(self):
        params, grads = self._block()
        lrs = np.array([0.1, 0.05, 0.2])
        serial_rows = []
        for b in range(3):
            p = Parameter(params[b].copy())
            p.accumulate(grads[b])
            SGD([p], lr=lrs[b], momentum=0.9, weight_decay=5e-4).step()
            serial_rows.append(p.data)
        opt = BatchedSGD([(0, 7)], lrs, momentum=0.9, weight_decay=5e-4)
        opt.step(params, grads)
        np.testing.assert_array_equal(params, np.stack(serial_rows))

    def test_momentum_accumulates_like_serial(self):
        params, grads = self._block()
        p = Parameter(params[0].copy())
        serial = SGD([p], lr=0.1, momentum=0.9)
        batched = BatchedSGD([(0, 7)], np.full(3, 0.1), momentum=0.9)
        for _ in range(3):
            p.zero_grad()
            p.accumulate(grads[0])
            serial.step()
            batched.step(params, grads)
        np.testing.assert_array_equal(params[0], p.data)

    def test_buffer_columns_never_touched(self):
        params, grads = self._block()
        before = params.copy()
        opt = BatchedSGD([(0, 2), (5, 7)], np.full(3, 0.1), momentum=0.9,
                         weight_decay=5e-4)
        opt.step(params, grads)
        np.testing.assert_array_equal(params[:, 2:5], before[:, 2:5])
        assert not np.array_equal(params[:, :2], before[:, :2])

    def test_grads_left_unmodified(self):
        params, grads = self._block()
        before = grads.copy()
        BatchedSGD([(0, 7)], np.full(3, 0.1), momentum=0.9,
                   weight_decay=5e-4).step(params, grads)
        np.testing.assert_array_equal(grads, before)

    def test_reset_state_clears_velocity(self):
        params, grads = self._block()
        opt = BatchedSGD([(0, 7)], np.full(3, 1.0), momentum=0.9)
        opt.step(params, grads)
        opt.reset_state()
        fresh = params.copy()
        opt.step(fresh, grads)  # no history: plain -lr*grad again
        np.testing.assert_array_equal(fresh, params - 1.0 * grads)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            BatchedSGD([(0, 2)], np.array([0.1, -0.1]))
        with pytest.raises(ValueError, match="momentum"):
            BatchedSGD([(0, 2)], np.array([0.1]), momentum=-1.0)
        opt = BatchedSGD([(0, 2)], np.array([0.1, 0.1]))
        with pytest.raises(ValueError, match="blocks"):
            opt.step(np.zeros((3, 2)), np.zeros((3, 2)))


class TestBatchedTrainerParity:
    """The equivalence harness: blocked training reproduces the per-row
    workspace path on fixed seeds for every Table-2 model family."""

    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_exact_in_float64(self, arch, kwargs, xshape):
        """Momentum, weight decay, label smoothing and per-row lr_decay
        sessions all on: final states must match bit for bit."""
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, n_rows=4, n=12, seed=2
        )
        sessions = [0, 2, 1, 3]
        serial = np.empty_like(params)
        trainer = LocalTrainer(model, TRAIN_CONFIG)
        for b, state in enumerate(states):
            out = trainer.train(
                state, xs[b], ys[b], np.random.default_rng(50 + b),
                session=sessions[b],
            )
            layout.pack(out, out=serial[b])
        batched = BatchedTrainer(model, TRAIN_CONFIG, layout)
        rngs = [np.random.default_rng(50 + b) for b in range(4)]
        batched.train_block(params, xs, ys, rngs, sessions)
        np.testing.assert_array_equal(params, serial)

    def test_rng_streams_advance_exactly_like_serial(self):
        """Each row's generator must leave train_block in the same state
        the serial path leaves it — downstream draws depend on it."""
        arch, kwargs, xshape = ARCHS[0]
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, seed=3
        )
        trainer = LocalTrainer(model, TRAIN_CONFIG)
        serial_rngs = [np.random.default_rng(70 + b) for b in range(4)]
        for b, state in enumerate(states):
            trainer.train(state, xs[b], ys[b], serial_rngs[b], session=0)
        batched_rngs = [np.random.default_rng(70 + b) for b in range(4)]
        BatchedTrainer(model, TRAIN_CONFIG, layout).train_block(
            params, xs, ys, batched_rngs, [0] * 4
        )
        for serial_rng, batched_rng in zip(serial_rngs, batched_rngs):
            assert serial_rng.random() == batched_rng.random()

    def test_float32_block_trains_in_float32(self):
        """Block dtype contract: a float32 block stays float32 and lands
        within rounding of the float64 result."""
        arch, kwargs, xshape = ARCHS[0]
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, seed=4
        )
        params32 = params.astype(np.float32)
        batched = BatchedTrainer(model, TRAIN_CONFIG, layout)
        batched.train_block(
            params, xs, ys,
            [np.random.default_rng(90 + b) for b in range(4)], [0] * 4,
        )
        out32 = batched.train_block(
            params32, xs, ys,
            [np.random.default_rng(90 + b) for b in range(4)], [0] * 4,
        )
        assert out32.dtype == np.float32
        np.testing.assert_allclose(out32, params, rtol=2e-3, atol=2e-3)

    def test_zero_epochs_and_empty_blocks_are_noops(self):
        arch, kwargs, xshape = ARCHS[0]
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, seed=5
        )
        config = TrainerConfig(learning_rate=0.1, local_epochs=0, batch_size=4)
        before = params.copy()
        batched = BatchedTrainer(model, config, layout)
        batched.train_block(
            params, xs, ys, [np.random.default_rng(b) for b in range(4)],
            [0] * 4,
        )
        np.testing.assert_array_equal(params, before)
        empty = np.empty((0, layout.dim))
        assert batched.train_block(empty, [], [], [], []) is empty

    def test_rejects_ragged_blocks(self):
        arch, kwargs, xshape = ARCHS[0]
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, seed=6
        )
        batched = BatchedTrainer(model, TRAIN_CONFIG, layout)
        rngs = [np.random.default_rng(b) for b in range(4)]
        ragged = [x[: 3 + b] for b, x in enumerate(xs)]
        with pytest.raises(ValueError, match="same number of samples"):
            batched.train_block(params, ragged, ys, rngs, [0] * 4)
        with pytest.raises(ValueError, match="one entry|per row|per block"):
            batched.train_block(params, xs[:2], ys, rngs, [0] * 4)

    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_dp_exact_in_float64(self, arch, kwargs, xshape):
        """Vectorized per-sample-gradient DP-SGD must reproduce the
        serial clip-and-noise path bit for bit — including the
        BatchNorm statistics fold for the conv families."""
        from repro.privacy.dp import DPSGDConfig

        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, n_rows=4, n=12, seed=8
        )
        dp_config = TrainerConfig(
            learning_rate=0.05,
            momentum=0.9,
            weight_decay=5e-4,
            local_epochs=2,
            batch_size=5,
            dp=DPSGDConfig(clip_norm=1.0, noise_multiplier=0.7),
        )
        serial = np.empty_like(params)
        trainer = LocalTrainer(model, dp_config)
        for b, state in enumerate(states):
            out = trainer.train(
                state, xs[b], ys[b], np.random.default_rng(30 + b), session=0
            )
            layout.pack(out, out=serial[b])
        batched = BatchedTrainer(model, dp_config, layout)
        rngs = [np.random.default_rng(30 + b) for b in range(4)]
        batched.train_block(params, xs, ys, rngs, [0] * 4)
        np.testing.assert_array_equal(params, serial)

    def test_dp_runs_blocked(self):
        # DP-SGD no longer falls back per row: the vectorized
        # per-sample-gradient path trains the whole block.
        from repro.privacy.dp import DPSGDConfig

        arch, kwargs, xshape = ARCHS[0]
        model, layout, params, states, xs, ys = make_training_block(
            arch, kwargs, xshape, seed=6
        )
        dp_config = TrainerConfig(
            learning_rate=0.1, batch_size=4,
            dp=DPSGDConfig(clip_norm=1.0, noise_multiplier=0.1),
        )
        trainer = BatchedTrainer(model, dp_config, layout)
        rngs = [np.random.default_rng(b) for b in range(4)]
        before = params.copy()
        out = trainer.train_block(params, xs, ys, rngs, [0] * 4)
        assert trainer.steps_taken > 0
        assert not np.array_equal(out, before)


class TestSupportsBatchedForward:
    def test_table2_families_supported(self):
        for arch, kwargs, _ in ARCHS:
            assert supports_batched_forward(build_model(arch, **kwargs))

    def test_unknown_layer_rejected(self):
        class Weird(Module):
            def forward(self, x):
                return x

        assert not supports_batched_forward(Sequential(Dense(4, 2), Weird()))

    def test_unknown_layer_raises_at_forward(self):
        class Weird(Module):
            def forward(self, x):
                return x

        model = Sequential(Weird())
        layout = StateLayout.from_state({"w": np.zeros(1)})
        with pytest.raises(NotImplementedError):
            batched_forward(model, layout, np.zeros((1, 1)), np.zeros((2, 3)))
