"""Tests for the batched eval-mode forward over parameter blocks."""

import numpy as np
import pytest

from repro.nn.batched import batched_forward, supports_batched_forward
from repro.nn.flat import StateLayout
from repro.nn.layers import Dense, Module, Sequential
from repro.nn.models import build_model
from repro.nn.serialize import get_state, set_state

ARCHS = [
    ("mlp", dict(in_features=20, num_classes=7, hidden=(16, 8)), (9, 20)),
    ("cnn", dict(in_channels=3, image_size=8, num_classes=5, width=4), (9, 3, 8, 8)),
    ("resnet8", dict(in_channels=3, num_classes=6, width=4), (9, 3, 8, 8)),
]


def make_block(model, n_rows, rng):
    """Distinct random states for every row, packed and kept as dicts."""
    template = get_state(model)
    layout = StateLayout.from_state(template)
    params = np.empty((n_rows, layout.dim))
    states = []
    for b in range(n_rows):
        state = {
            k: rng.normal(size=v.shape) * 0.3
            + (1.0 if "running_var" in k else 0.0)
            for k, v in template.items()
        }
        states.append(state)
        layout.pack(state, out=params[b])
    return layout, params, states


class TestBatchedForward:
    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_matches_per_model_forward_shared_input(self, arch, kwargs, xshape):
        rng = np.random.default_rng(0)
        model = build_model(arch, **kwargs)
        layout, params, states = make_block(model, 4, rng)
        x = rng.normal(size=xshape)
        out = batched_forward(model, layout, params, x, shared=True)
        model.eval()
        for b, state in enumerate(states):
            set_state(model, state)
            np.testing.assert_allclose(
                out[b], model.forward(x), rtol=1e-9, atol=1e-9
            )

    @pytest.mark.parametrize("arch,kwargs,xshape", ARCHS)
    def test_matches_per_model_forward_per_model_inputs(self, arch, kwargs, xshape):
        rng = np.random.default_rng(1)
        model = build_model(arch, **kwargs)
        layout, params, states = make_block(model, 4, rng)
        xs = rng.normal(size=(4,) + xshape)
        out = batched_forward(model, layout, params, xs, shared=False)
        model.eval()
        for b, state in enumerate(states):
            set_state(model, state)
            np.testing.assert_allclose(
                out[b], model.forward(xs[b]), rtol=1e-9, atol=1e-9
            )

    def test_math_stays_in_block_dtype(self):
        """Float32 parameter blocks are scored in float32 — the arena
        dtype contract — even when the input arrives as float64."""
        rng = np.random.default_rng(2)
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout, params, _ = make_block(model, 3, rng)
        x = rng.normal(size=(5, 10))
        out32 = batched_forward(model, layout, params.astype(np.float32), x)
        assert out32.dtype == np.float32
        out64 = batched_forward(model, layout, params, x)
        assert out64.dtype == np.float64
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-4)

    def test_rejects_mismatched_block(self):
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout = StateLayout.from_model(model)
        with pytest.raises(ValueError, match="params"):
            batched_forward(model, layout, np.zeros((2, layout.dim + 1)),
                            np.zeros((3, 10)))

    def test_rejects_wrong_per_model_leading_dim(self):
        model = build_model("mlp", in_features=10, num_classes=4, hidden=(8,))
        layout = StateLayout.from_model(model)
        params = np.zeros((2, layout.dim))
        with pytest.raises(ValueError, match="leading size"):
            batched_forward(model, layout, params, np.zeros((3, 5, 10)),
                            shared=False)


class TestSupportsBatchedForward:
    def test_table2_families_supported(self):
        for arch, kwargs, _ in ARCHS:
            assert supports_batched_forward(build_model(arch, **kwargs))

    def test_unknown_layer_rejected(self):
        class Weird(Module):
            def forward(self, x):
                return x

        assert not supports_batched_forward(Sequential(Dense(4, 2), Weird()))

    def test_unknown_layer_raises_at_forward(self):
        class Weird(Module):
            def forward(self, x):
                return x

        model = Sequential(Weird())
        layout = StateLayout.from_state({"w": np.zeros(1)})
        with pytest.raises(NotImplementedError):
            batched_forward(model, layout, np.zeros((1, 1)), np.zeros((2, 3)))
