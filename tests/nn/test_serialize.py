"""Tests for model-state flattening and averaging."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Sequential,
    average_states,
    build_mlp,
    get_state,
    set_state,
    state_to_vector,
    vector_to_state,
)


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(4, 8, rng=rng), Dense(8, 2, rng=rng))


class TestStateRoundtrip:
    def test_get_set_roundtrip(self):
        a, b = small_model(0), small_model(1)
        set_state(b, get_state(a))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_get_state_is_a_copy(self):
        model = small_model()
        state = get_state(model)
        state["0.weight"][0, 0] = 999.0
        assert model.layers[0].weight.data[0, 0] != 999.0

    def test_set_state_missing_key(self):
        model = small_model()
        state = get_state(model)
        del state["0.weight"]
        with pytest.raises(KeyError):
            set_state(model, state)

    def test_set_state_extra_key(self):
        model = small_model()
        state = get_state(model)
        state["ghost"] = np.zeros(2)
        with pytest.raises(KeyError):
            set_state(model, state)

    def test_set_state_shape_mismatch(self):
        model = small_model()
        state = get_state(model)
        state["0.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            set_state(model, state)

    def test_buffers_included(self):
        rng = np.random.default_rng(0)
        model = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2))
        model.forward(rng.normal(size=(4, 1, 5, 5)))
        state = get_state(model)
        assert "buffer:1.running_mean" in state
        fresh = Sequential(Conv2d(1, 2, 3, rng=rng), BatchNorm2d(2))
        set_state(fresh, state)
        np.testing.assert_array_equal(
            fresh.get_buffer("1.running_mean"), model.get_buffer("1.running_mean")
        )


class TestVectorization:
    def test_vector_roundtrip(self):
        model = small_model()
        state = get_state(model)
        vec = state_to_vector(state)
        back = vector_to_state(vec, state)
        for name in state:
            np.testing.assert_array_equal(back[name], state[name])

    def test_vector_size(self):
        model = build_mlp(10, 3, hidden=(5,))
        state = get_state(model)
        assert state_to_vector(state).size == sum(a.size for a in state.values())

    def test_vector_to_state_rejects_wrong_size(self):
        state = get_state(small_model())
        with pytest.raises(ValueError):
            vector_to_state(np.zeros(3), state)

    def test_vector_order_is_name_sorted_and_stable(self):
        model = small_model()
        state = get_state(model)
        v1 = state_to_vector(state)
        v2 = state_to_vector(dict(reversed(list(state.items()))))
        np.testing.assert_array_equal(v1, v2)


class TestAveraging:
    def test_average_of_identical_is_identity(self):
        state = get_state(small_model())
        avg = average_states([state, state, state])
        for name in state:
            np.testing.assert_allclose(avg[name], state[name])

    def test_pairwise_average(self):
        s0 = get_state(small_model(0))
        s1 = get_state(small_model(1))
        avg = average_states([s0, s1])
        for name in s0:
            np.testing.assert_allclose(avg[name], (s0[name] + s1[name]) / 2)

    def test_weighted_average(self):
        s0 = {"w": np.array([0.0])}
        s1 = {"w": np.array([10.0])}
        avg = average_states([s0, s1], weights=[0.9, 0.1])
        assert avg["w"][0] == pytest.approx(1.0)

    def test_weights_are_normalized(self):
        s0 = {"w": np.array([0.0])}
        s1 = {"w": np.array([10.0])}
        avg = average_states([s0, s1], weights=[9.0, 1.0])
        assert avg["w"][0] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            average_states([])

    def test_rejects_mismatched_keys(self):
        with pytest.raises(KeyError):
            average_states([{"a": np.zeros(1)}, {"b": np.zeros(1)}])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            average_states([{"a": np.zeros(1)}], weights=[0.5, 0.5])

    @given(st.integers(2, 6))
    def test_permutation_invariance(self, n_states):
        """Averaging is invariant to the order of the states."""
        states = [
            {"w": np.random.default_rng(i).normal(size=4)} for i in range(n_states)
        ]
        fwd = average_states(states)
        rev = average_states(list(reversed(states)))
        np.testing.assert_allclose(fwd["w"], rev["w"], atol=1e-12)

    def test_average_matches_vector_average(self):
        """Averaging states equals averaging their flat vectors —
        the property Section 4 relies on to treat models as R^d."""
        s0, s1 = get_state(small_model(0)), get_state(small_model(1))
        avg = average_states([s0, s1])
        vec_avg = (state_to_vector(s0) + state_to_vector(s1)) / 2
        np.testing.assert_allclose(state_to_vector(avg), vec_avg)


class TestAverageStatesWeightValidation:
    def test_all_zero_weights_raise(self):
        states = [{"w": np.ones(3)}, {"w": np.zeros(3)}]
        with pytest.raises(ValueError, match="nonzero"):
            average_states(states, weights=[0.0, 0.0])

    def test_sign_cancelling_weights_raise(self):
        states = [{"w": np.ones(3)}, {"w": np.zeros(3)}]
        with pytest.raises(ValueError, match="nonzero"):
            average_states(states, weights=[1.0, -1.0])

    def test_non_finite_total_raises(self):
        states = [{"w": np.ones(3)}, {"w": np.zeros(3)}]
        with pytest.raises(ValueError):
            average_states(states, weights=[np.inf, -np.inf])

    def test_valid_unnormalized_weights_still_work(self):
        states = [{"w": np.zeros(2)}, {"w": np.full(2, 6.0)}]
        out = average_states(states, weights=[2.0, 1.0])
        np.testing.assert_allclose(out["w"], np.full(2, 2.0))


class TestVectorToStateDtype:
    def test_float32_template_round_trips(self):
        template = {
            "a": np.arange(6, dtype=np.float32).reshape(2, 3),
            "b": np.ones(4, dtype=np.float32),
        }
        vec = state_to_vector(template)
        back = vector_to_state(vec, template)
        for name in template:
            assert back[name].dtype == np.float32
            np.testing.assert_array_equal(back[name], template[name])

    def test_mixed_dtypes_preserved(self):
        template = {
            "f32": np.ones(2, dtype=np.float32),
            "f64": np.ones(2, dtype=np.float64),
        }
        vec = np.arange(4, dtype=np.float64)
        back = vector_to_state(vec, template)
        assert back["f32"].dtype == np.float32
        assert back["f64"].dtype == np.float64

    def test_tiny_but_valid_weight_total_normalizes(self):
        """Only exact cancellation is rejected; small magnitudes are a
        legitimate normalizable total."""
        states = [{"w": np.zeros(2)}, {"w": np.full(2, 4.0)}]
        out = average_states(states, weights=[5e-9, 5e-9])
        np.testing.assert_allclose(out["w"], np.full(2, 2.0))
