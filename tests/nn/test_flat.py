"""Tests for the flat-buffer state layout and the shared-memory arena."""

import multiprocessing

import numpy as np
import pytest

from repro.nn import build_mlp, get_state
from repro.nn.flat import SharedArena, StateLayout
from repro.nn.serialize import state_to_vector


def small_model(seed=0):
    return build_mlp(6, 3, hidden=(5,), rng=np.random.default_rng(seed))


def small_state(seed=0):
    return get_state(small_model(seed))


class TestLayoutConstruction:
    def test_sorted_name_order_and_dim(self):
        state = small_state()
        layout = StateLayout.from_state(state)
        assert layout.names == sorted(state)
        assert layout.dim == sum(arr.size for arr in state.values())
        offsets = [layout.slot(name).offset for name in layout.names]
        assert offsets == sorted(offsets)

    def test_from_model_matches_from_state(self):
        model = small_model()
        assert StateLayout.from_model(model) == StateLayout.from_state(
            get_state(model)
        )

    def test_records_shapes_and_dtypes(self):
        state = {
            "a": np.zeros((2, 3), dtype=np.float32),
            "b": np.zeros(4, dtype=np.float64),
        }
        layout = StateLayout.from_state(state)
        assert layout.slot("a").shape == (2, 3)
        assert layout.slot("a").dtype == np.float32
        assert layout.slot("b").dtype == np.float64
        assert layout.dim == 10


class TestPackUnpack:
    def test_pack_matches_state_to_vector(self):
        """The layout's flat order is the serialize module's order, so
        both flat representations are interchangeable."""
        state = small_state()
        layout = StateLayout.from_state(state)
        np.testing.assert_array_equal(layout.pack(state), state_to_vector(state))

    def test_round_trip_bitwise(self):
        state = small_state()
        layout = StateLayout.from_state(state)
        back = layout.unpack_copy(layout.pack(state))
        assert set(back) == set(state)
        for name in state:
            np.testing.assert_array_equal(back[name], state[name])
            assert back[name].dtype == state[name].dtype

    def test_unpack_returns_live_views(self):
        state = small_state()
        layout = StateLayout.from_state(state)
        vector = layout.pack(state)
        views = layout.unpack(vector)
        name = layout.names[0]
        views[name].flat[0] = 123.0
        assert vector[layout.slot(name).offset] == 123.0
        vector[:] = 0.0
        assert views[name].flat[0] == 0.0

    def test_pack_into_float32_out_casts(self):
        state = small_state()
        layout = StateLayout.from_state(state)
        out = layout.empty(dtype=np.float32)
        layout.pack(state, out=out)
        assert out.dtype == np.float32
        np.testing.assert_allclose(
            out, state_to_vector(state).astype(np.float32)
        )

    def test_pack_rejects_mismatched_state(self):
        state = small_state()
        layout = StateLayout.from_state(state)
        extra = dict(state)
        extra["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            layout.pack(extra)
        missing = dict(state)
        missing.pop(sorted(missing)[0])
        with pytest.raises(KeyError):
            layout.pack(missing)

    def test_pack_rejects_wrong_shape(self):
        state = small_state()
        layout = StateLayout.from_state(state)
        bad = {k: v.copy() for k, v in state.items()}
        name = sorted(bad)[0]
        bad[name] = np.zeros(bad[name].size + 1)
        with pytest.raises(ValueError):
            layout.pack(bad)

    def test_unpack_rejects_wrong_size(self):
        layout = StateLayout.from_state(small_state())
        with pytest.raises(ValueError):
            layout.unpack(np.zeros(layout.dim + 1))

    def test_layout_is_picklable(self):
        import pickle

        layout = StateLayout.from_state(small_state())
        clone = pickle.loads(pickle.dumps(layout))
        assert clone == layout
        assert clone.dim == layout.dim


class TestModuleDtypePlumbing:
    def test_module_astype_casts_params_and_buffers(self):
        from repro.nn import BatchNorm2d, Sequential

        model = Sequential(BatchNorm2d(3))
        model.astype(np.float32)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        assert all(
            buf.dtype == np.float32 for _, buf in model.named_buffers()
        )

    def test_float32_state_round_trips_through_model(self):
        """set_state/get_state must not widen a float32 state."""
        from repro.nn import get_state, set_state

        model = small_model().astype(np.float32)
        state = get_state(model)
        assert all(arr.dtype == np.float32 for arr in state.values())
        set_state(model, state)
        back = get_state(model)
        assert all(arr.dtype == np.float32 for arr in back.values())

    def test_register_buffer_respects_dtype(self):
        from repro.nn import Module

        class WithBuffer(Module):
            def __init__(self):
                super().__init__()
                self.register_buffer("b", np.zeros(2), dtype=np.float32)

        assert WithBuffer().get_buffer("b").dtype == np.float32


def _child_write(name, n_rows, dim, value):
    """Attach from another process and write one row."""
    arena = SharedArena.attach(name, n_rows, dim)
    arena.data[1] = value
    arena.close()


class TestSharedArena:
    def test_create_attach_round_trip(self):
        arena = SharedArena(3, 5)
        try:
            arena.data[2] = 7.5
            attached = SharedArena.attach(arena.name, 3, 5)
            np.testing.assert_array_equal(attached.data[2], np.full(5, 7.5))
            # Writes propagate both ways: same physical pages.
            attached.data[0] = -1.0
            np.testing.assert_array_equal(arena.data[0], np.full(5, -1.0))
            attached.close()
        finally:
            arena.close()

    def test_cross_process_writes_visible(self):
        """The zero-copy contract across a real process boundary."""
        arena = SharedArena(4, 6)
        try:
            process = multiprocessing.Process(
                target=_child_write, args=(arena.name, 4, 6, 42.0)
            )
            process.start()
            process.join(timeout=30)
            assert process.exitcode == 0
            np.testing.assert_array_equal(arena.data[1], np.full(6, 42.0))
            np.testing.assert_array_equal(arena.data[0], np.zeros(6))
        finally:
            arena.close()

    def test_owner_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        arena = SharedArena(2, 3)
        name = arena.name
        arena.close()
        assert arena.closed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_close_is_idempotent(self):
        arena = SharedArena(2, 3)
        arena.close()
        arena.close()
        assert arena.closed

    def test_attachment_close_does_not_unlink(self):
        arena = SharedArena(2, 3)
        try:
            attached = SharedArena.attach(arena.name, 2, 3)
            assert not attached.owner
            attached.close()
            # Owner's segment must still be alive and writable.
            arena.data[0] = 1.0
            again = SharedArena.attach(arena.name, 2, 3)
            np.testing.assert_array_equal(again.data[0], np.ones(3))
            again.close()
        finally:
            arena.close()

    def test_finalizer_releases_on_garbage_collection(self):
        from multiprocessing import shared_memory

        arena = SharedArena(2, 3)  # reprolint: allow[lifecycle-unmanaged] -- exercises the weakref.finalize GC fallback on purpose
        name = arena.name
        del arena
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_attach_rejects_missing_and_undersized_segments(self):
        with pytest.raises(FileNotFoundError):
            SharedArena.attach("psm_repro_does_not_exist", 2, 3)
        arena = SharedArena(2, 3, dtype=np.float32)
        try:
            with pytest.raises(ValueError, match="bytes"):
                SharedArena.attach(arena.name, 64, 64)
        finally:
            arena.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            SharedArena(0, 4)
        with pytest.raises(ValueError, match="segment name"):
            SharedArena(2, 2, create=False)

    def test_dtype_and_shape_respected(self):
        arena = SharedArena(3, 4, dtype=np.float32)
        try:
            assert arena.data.shape == (3, 4)
            assert arena.data.dtype == np.float32
            np.testing.assert_array_equal(arena.data, np.zeros((3, 4)))
        finally:
            arena.close()
