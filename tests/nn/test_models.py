"""Tests for the Table 2 model families."""

import numpy as np
import pytest

from repro.nn import (
    CrossEntropyLoss,
    SGD,
    build_cnn,
    build_mlp,
    build_model,
    build_resnet8,
    num_parameters,
)


class TestBuilders:
    def test_cnn_output_shape(self, rng):
        model = build_cnn(3, 16, 10, width=4, rng=rng)
        out = model.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_cnn_paper_scale_parameter_count(self):
        """Paper quotes ~124k parameters for the CIFAR-10 CNN."""
        model = build_cnn(3, 32, 10, width=16)
        assert 100_000 < num_parameters(model) < 160_000

    def test_cnn_rejects_indivisible_image(self):
        with pytest.raises(ValueError):
            build_cnn(3, 10, 10)

    def test_resnet8_output_shape(self, rng):
        model = build_resnet8(3, 100, width=4, rng=rng)
        out = model.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 100)

    def test_resnet8_paper_scale_parameter_count(self):
        """Paper quotes ~1.2M parameters for ResNet-8 at width 64."""
        model = build_resnet8(3, 100, width=64)
        assert 1_000_000 < num_parameters(model) < 1_600_000

    def test_resnet8_has_8_weighted_layers(self):
        from repro.nn.layers import Conv2d, Dense

        model = build_resnet8(3, 10, width=4)
        convs = [
            m
            for m in model.modules()
            if isinstance(m, Conv2d) and m.kernel_size == 3
        ]
        dense = [m for m in model.modules() if isinstance(m, Dense)]
        assert len(convs) == 7  # stem + 3 blocks x 2
        assert len(dense) == 1

    def test_mlp_output_shape(self, rng):
        model = build_mlp(64, 100, hidden=(32, 16), rng=rng)
        assert model.forward(rng.normal(size=(3, 64))).shape == (3, 100)

    def test_mlp_paper_scale_parameter_count(self):
        """Paper quotes ~1.3M parameters for the Purchase100 MLP."""
        model = build_mlp(600, 100, hidden=(1024, 512, 256))
        assert 1_200_000 < num_parameters(model) < 1_400_000

    def test_mlp_is_4_layers(self):
        from repro.nn.layers import Dense

        model = build_mlp(10, 5, hidden=(8, 8, 8))
        assert len([m for m in model.modules() if isinstance(m, Dense)]) == 4


class TestFactory:
    def test_same_seed_same_weights(self):
        a = build_model("mlp", in_features=16, num_classes=4, hidden=(8,), seed=3)
        b = build_model("mlp", in_features=16, num_classes=4, hidden=(8,), seed=3)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = build_model("mlp", in_features=16, num_classes=4, hidden=(8,), seed=3)
        b = build_model("mlp", in_features=16, num_classes=4, hidden=(8,), seed=4)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters())
        )

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            build_model("transformer")

    @pytest.mark.parametrize("arch", ["cnn", "resnet8", "mlp"])
    def test_all_architectures_instantiable(self, arch):
        model = build_model(
            arch,
            in_channels=1,
            image_size=8,
            in_features=32,
            num_classes=5,
            width=4,
            hidden=(16,),
        )
        assert num_parameters(model) > 0


class TestTrainability:
    def test_mlp_overfits_tiny_dataset(self, rng):
        """The whole point of the repro: models must memorize small data."""
        model = build_mlp(20, 4, hidden=(32, 32), rng=rng)
        x = rng.normal(size=(16, 20))
        y = rng.integers(0, 4, size=16)
        loss_fn = CrossEntropyLoss()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = loss_fn(model.forward(x), y)
            first = first if first is not None else loss
            model.backward(loss_fn.backward())
            opt.step()
        final = loss_fn(model.forward(x), y)
        assert final < 0.1 < first

    def test_cnn_learns_separable_classes(self, rng):
        model = build_cnn(1, 8, 2, width=4, rng=rng)
        n = 32
        x = rng.normal(size=(n, 1, 8, 8)) * 0.1
        y = np.array([i % 2 for i in range(n)])
        x[y == 1] += 1.0  # class 1 is brighter
        loss_fn = CrossEntropyLoss()
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        for _ in range(60):
            opt.zero_grad()
            loss_fn(model.forward(x), y)
            model.backward(loss_fn.backward())
            opt.step()
        acc = (model.forward(x).argmax(axis=1) == y).mean()
        assert acc > 0.9
