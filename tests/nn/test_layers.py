"""Layer tests, including finite-difference gradient checks.

Every layer's backward pass is verified against central finite
differences through a scalar head (sum of outputs weighted by a fixed
random projection), which exercises arbitrary output gradients.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)


def check_input_gradient(layer, x, fd_grad, atol=1e-6):
    """Compare layer.backward's input gradient to finite differences."""
    rng = np.random.default_rng(0)
    out = layer.forward(x)
    proj = rng.normal(size=out.shape)

    def scalar():
        return float((layer.forward(x) * proj).sum())

    numeric = fd_grad(scalar, x)
    layer.forward(x)
    analytic = layer.backward(proj)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def check_param_gradients(layer, x, fd_grad, atol=1e-6):
    """Compare parameter gradients to finite differences."""
    rng = np.random.default_rng(1)
    out = layer.forward(x)
    proj = rng.normal(size=out.shape)

    def scalar():
        return float((layer.forward(x) * proj).sum())

    for param in layer.parameters():
        numeric = fd_grad(scalar, param.data)
        layer.zero_grad()
        layer.forward(x)
        layer.backward(proj)
        np.testing.assert_allclose(
            param.grad, numeric, atol=atol, err_msg=f"param {param.name}"
        )


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, rng=rng)
        assert layer.forward(rng.normal(size=(4, 5))).shape == (4, 3)

    def test_rejects_wrong_input(self, rng):
        layer = Dense(5, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 6)))

    def test_input_gradient(self, rng, fd_grad):
        layer = Dense(4, 3, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 4)), fd_grad)

    def test_param_gradients(self, rng, fd_grad):
        layer = Dense(4, 3, rng=rng)
        check_param_gradients(layer, rng.normal(size=(2, 4)), fd_grad)

    def test_no_bias_variant(self, rng):
        layer = Dense(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 3)))


class TestConv2d:
    def test_forward_shape_with_padding(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        assert layer.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 8, 8, 8)

    def test_forward_shape_with_stride(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, stride=2, padding=1, rng=rng)
        assert layer.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 8, 4, 4)

    def test_rejects_wrong_channels(self, rng):
        layer = Conv2d(3, 8, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 4, 8, 8)))

    def test_matches_naive_convolution(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, stride=1, padding=0, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer.forward(x)
        # Naive direct computation.
        w, b = layer.weight.data, layer.bias.data
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    expected = (patch * w[oc]).sum() + b[oc]
                    assert out[0, oc, i, j] == pytest.approx(expected)

    def test_input_gradient(self, rng, fd_grad):
        layer = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 2, 5, 5)), fd_grad)

    def test_input_gradient_strided(self, rng, fd_grad):
        layer = Conv2d(2, 2, kernel_size=3, stride=2, padding=1, rng=rng)
        check_input_gradient(layer, rng.normal(size=(1, 2, 6, 6)), fd_grad)

    def test_param_gradients(self, rng, fd_grad):
        layer = Conv2d(2, 2, kernel_size=3, stride=1, padding=1, rng=rng)
        check_param_gradients(layer, rng.normal(size=(1, 2, 4, 4)), fd_grad)


class TestMaxPool2d:
    def test_forward_values(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_rejects_indivisible(self, rng):
        layer = MaxPool2d(2)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 1, 5, 5)))

    def test_input_gradient(self, rng, fd_grad):
        layer = MaxPool2d(2)
        # Distinct values avoid finite-difference kinks at ties.
        x = rng.permutation(64).astype(float).reshape(1, 1, 8, 8) * 0.1
        check_input_gradient(layer, x, fd_grad, atol=1e-5)

    def test_gradient_goes_to_max_position(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[1.0]]]]))
        np.testing.assert_array_equal(grad[0, 0], [[0, 0], [0, 1.0]])


class TestGlobalAvgPool2d:
    def test_forward(self, rng):
        layer = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(2, 3)))

    def test_input_gradient(self, rng, fd_grad):
        layer = GlobalAvgPool2d()
        check_input_gradient(layer, rng.normal(size=(2, 2, 3, 3)), fd_grad)


class TestBatchNorm2d:
    def test_train_normalizes_batch(self, rng):
        layer = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4))
        out = layer.forward(x)
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(3), abs=1e-10)
        assert out.var(axis=(0, 2, 3)) == pytest.approx(np.ones(3), rel=1e-3)

    def test_running_stats_update(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=2.0, size=(16, 2, 4, 4))
        layer.forward(x)
        mean = layer.get_buffer("running_mean")
        assert np.all(mean != 0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        for _ in range(50):
            layer.forward(rng.normal(loc=1.0, size=(8, 2, 4, 4)))
        layer.eval()
        x = rng.normal(loc=1.0, size=(4, 2, 4, 4))
        out = layer.forward(x)
        # Output should be roughly standardized using running stats.
        assert abs(out.mean()) < 0.3

    def test_input_gradient_training(self, rng, fd_grad):
        layer = BatchNorm2d(2)
        check_input_gradient(layer, rng.normal(size=(4, 2, 3, 3)), fd_grad, atol=1e-5)

    def test_param_gradients(self, rng, fd_grad):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        # Freeze running-stat updates' effect on the scalar by checking
        # gamma/beta only (they do not affect normalization statistics).
        check_param_gradients(layer, x, fd_grad, atol=1e-5)

    def test_rejects_wrong_channels(self, rng):
        layer = BatchNorm2d(3)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(2, 4, 3, 3)))


class TestFlattenDropoutIdentity:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        np.testing.assert_array_equal(layer.backward(out), x)

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_dropout_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng=rng, mode="legacy")
        x = np.ones((200, 200))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_stream_dropout_preserves_expectation(self):
        from repro.nn.layers import mask_stream_rng

        layer = Dropout(0.5)
        layer.set_mask_rng(mask_stream_rng(0, node=3, session=1, step=0, layer_index=0))
        x = np.ones((200, 200))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_stream_dropout_without_stream_raises(self):
        layer = Dropout(0.5)
        with pytest.raises(RuntimeError, match="mask stream"):
            layer.forward(np.ones((4, 4)))

    def test_stream_dropout_is_reproducible(self):
        from repro.nn.layers import mask_stream_rng

        x = np.ones((8, 8))
        outs = []
        for _ in range(2):
            layer = Dropout(0.5)
            layer.set_mask_rng(
                mask_stream_rng(7, node=2, session=5, step=1, layer_index=0)
            )
            outs.append(layer.forward(x))
        np.testing.assert_array_equal(outs[0], outs[1])
        other = Dropout(0.5)
        other.set_mask_rng(
            mask_stream_rng(7, node=2, session=5, step=2, layer_index=0)
        )
        assert not np.array_equal(outs[0], other.forward(x))

    def test_dropout_mask_keeps_float32(self):
        from repro.nn.layers import mask_stream_rng

        layer = Dropout(0.5)
        layer.set_mask_rng(mask_stream_rng(0, 0, 0, 0, 0))
        out = layer.forward(np.ones((4, 4), dtype=np.float32))
        assert out.dtype == np.float32

    def test_dropout_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(0.5, mode="bogus")

    def test_identity(self, rng):
        layer = Identity()
        x = rng.normal(size=(2, 2))
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)


class TestSequentialResidual:
    def test_sequential_chains(self, rng):
        model = Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        assert model.forward(rng.normal(size=(3, 4))).shape == (3, 2)
        assert len(model) == 3

    def test_sequential_gradient(self, rng, fd_grad):
        model = Sequential(Dense(3, 5, rng=rng), ReLU(), Dense(5, 2, rng=rng))
        check_input_gradient(model, rng.normal(size=(2, 3)), fd_grad)

    def test_sequential_param_gradients(self, rng, fd_grad):
        model = Sequential(Dense(3, 4, rng=rng), ReLU(), Dense(4, 2, rng=rng))
        check_param_gradients(model, rng.normal(size=(2, 3)), fd_grad)

    def test_residual_forward_adds_shortcut(self, rng):
        block = Residual(Identity())
        x = np.abs(rng.normal(size=(2, 3)))  # positive so relu is linear
        np.testing.assert_allclose(block.forward(x), 2 * x)

    def test_residual_gradient(self, rng, fd_grad):
        block = Residual(Dense(4, 4, rng=rng))
        check_input_gradient(block, rng.normal(size=(2, 4)), fd_grad)

    def test_residual_with_projection_shortcut(self, rng, fd_grad):
        block = Residual(Dense(4, 6, rng=rng), shortcut=Dense(4, 6, rng=rng))
        check_input_gradient(block, rng.normal(size=(2, 4)), fd_grad)

    def test_named_parameters_are_qualified(self, rng):
        model = Sequential(Dense(2, 2, rng=rng), Dense(2, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names
        assert "1.bias" in names

    def test_train_eval_propagate(self, rng):
        model = Sequential(Dense(2, 2, rng=rng), Dropout(0.5), BatchNorm2d(1))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestModuleBase:
    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))

    def test_set_buffer_unknown_name(self):
        layer = BatchNorm2d(2)
        with pytest.raises(KeyError):
            layer.set_buffer("nonexistent", np.zeros(2))

    def test_zero_grad_clears_all(self, rng):
        model = Sequential(Dense(3, 3, rng=rng), Dense(3, 3, rng=rng))
        x = rng.normal(size=(2, 3))
        model.forward(x)
        model.backward(np.ones((2, 3)))
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())
