"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestKaiming:
    def test_normal_std_matches_fan_in(self, rng):
        w = init.kaiming_normal((500, 300), rng)
        expected = np.sqrt(2.0 / 500)
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_conv_fan_in_uses_receptive_field(self, rng):
        w = init.kaiming_normal((64, 16, 3, 3), rng)
        expected = np.sqrt(2.0 / (16 * 9))
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_uniform_bound(self, rng):
        w = init.kaiming_uniform((200, 100), rng)
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound

    def test_deterministic_given_seed(self):
        a = init.kaiming_normal((10, 10), np.random.default_rng(7))
        b = init.kaiming_normal((10, 10), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_rejects_unsupported_shape(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_normal((5,), rng)


class TestXavier:
    def test_normal_std(self, rng):
        w = init.xavier_normal((400, 600), rng)
        expected = np.sqrt(2.0 / 1000)
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_uniform_bound(self, rng):
        w = init.xavier_uniform((100, 100), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 200)


def test_zeros():
    w = init.zeros((3, 4))
    assert w.shape == (3, 4)
    assert np.all(w == 0)
