"""Tests for Parameter gradient bookkeeping."""

import numpy as np
import pytest

from repro.nn import Parameter


class TestParameter:
    def test_data_stored_as_float64(self):
        p = Parameter(np.array([1, 2, 3], dtype=np.int32))
        assert p.data.dtype == np.float64

    def test_grad_starts_at_zero(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert np.all(p.grad == 0)

    def test_accumulate_adds(self):
        p = Parameter(np.zeros(3))
        p.accumulate(np.array([1.0, 2.0, 3.0]))
        p.accumulate(np.array([1.0, 1.0, 1.0]))
        np.testing.assert_allclose(p.grad, [2.0, 3.0, 4.0])

    def test_accumulate_rejects_shape_mismatch(self):
        p = Parameter(np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            p.accumulate(np.zeros(4))

    def test_zero_grad_resets_in_place(self):
        p = Parameter(np.zeros(2))
        grad_ref = p.grad
        p.accumulate(np.ones(2))
        p.zero_grad()
        assert np.all(p.grad == 0)
        assert p.grad is grad_ref

    def test_copy_is_deep(self):
        p = Parameter(np.ones(2), name="w")
        p.accumulate(np.ones(2))
        q = p.copy()
        q.data[0] = 99.0
        q.grad[0] = 99.0
        assert p.data[0] == 1.0
        assert p.grad[0] == 1.0
        assert q.name == "w"

    def test_shape_and_size(self):
        p = Parameter(np.zeros((4, 5)))
        assert p.shape == (4, 5)
        assert p.size == 20

    def test_requires_grad_flag(self):
        p = Parameter(np.zeros(2), requires_grad=False)
        assert not p.requires_grad


class TestParameterDtype:
    def test_requested_dtype_preserved(self):
        p = Parameter(np.ones(3), dtype=np.float32)
        assert p.data.dtype == np.float32
        assert p.grad.dtype == np.float32

    def test_astype_casts_data_and_grad(self):
        p = Parameter(np.ones(3))
        p.accumulate(np.full(3, 0.5))
        out = p.astype(np.float32)
        assert out is p
        assert p.data.dtype == np.float32
        assert p.grad.dtype == np.float32
        np.testing.assert_allclose(p.grad, 0.5)
