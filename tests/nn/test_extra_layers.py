"""Tests for the auxiliary layers (AvgPool2d, LeakyReLU, Sigmoid, Tanh)."""

import numpy as np
import pytest

from repro.nn import AvgPool2d, LeakyReLU, Sigmoid, Tanh

from tests.nn.test_layers import check_input_gradient


class TestAvgPool2d:
    def test_forward_values(self):
        layer = AvgPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_rejects_indivisible(self, rng):
        with pytest.raises(ValueError):
            AvgPool2d(3).forward(rng.normal(size=(1, 1, 4, 4)))

    def test_input_gradient(self, rng, fd_grad):
        check_input_gradient(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)), fd_grad)

    def test_gradient_spreads_uniformly(self):
        layer = AvgPool2d(2)
        layer.forward(np.zeros((1, 1, 2, 2)))
        grad = layer.backward(np.array([[[[1.0]]]]))
        np.testing.assert_allclose(grad, 0.25)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            AvgPool2d(2).backward(np.zeros((1, 1, 1, 1)))


class TestLeakyReLU:
    def test_forward(self):
        layer = LeakyReLU(0.1)
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(layer.forward(x), [-0.2, 0.0, 3.0])

    def test_zero_slope_is_relu(self, rng):
        x = rng.normal(size=(5, 5))
        from repro.nn import ReLU

        np.testing.assert_allclose(
            LeakyReLU(0.0).forward(x), ReLU().forward(x)
        )

    def test_input_gradient(self, rng, fd_grad):
        check_input_gradient(LeakyReLU(0.2), rng.normal(size=(3, 4)), fd_grad)

    def test_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)


class TestSigmoid:
    def test_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(10, 10)) * 10)
        assert np.all(out > 0) and np.all(out < 1)

    def test_midpoint(self):
        assert Sigmoid().forward(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_stable_for_extremes(self):
        out = Sigmoid().forward(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_input_gradient(self, rng, fd_grad):
        check_input_gradient(Sigmoid(), rng.normal(size=(3, 4)), fd_grad)


class TestTanh:
    def test_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 10)) * 10)
        assert np.all(np.abs(out) <= 1)

    def test_odd_function(self, rng):
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(
            Tanh().forward(x), -Tanh().forward(-x)
        )

    def test_input_gradient(self, rng, fd_grad):
        check_input_gradient(Tanh(), rng.normal(size=(3, 4)), fd_grad)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Tanh().backward(np.zeros(2))
