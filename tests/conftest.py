"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Keep hypothesis fast and deterministic in CI.
settings.register_profile("ci", max_examples=25, deadline=None, derandomize=True)
settings.load_profile("ci")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def finite_difference_grad(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central finite differences of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn()
        flat[i] = orig - eps
        down = fn()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


@pytest.fixture
def fd_grad():
    return finite_difference_grad
