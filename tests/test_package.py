"""Package-surface tests: the documented public API must import and
expose what README/DESIGN promise."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_one_call_api(self):
        from repro import StudyConfig, VulnerabilityStudy, run_study

        assert callable(run_study)
        assert StudyConfig().dataset  # has defaults
        assert VulnerabilityStudy is not None


class TestSubpackageSurface:
    @pytest.mark.parametrize(
        "module,symbols",
        [
            ("repro.nn", ["Dense", "Conv2d", "SGD", "build_resnet8",
                          "average_states"]),
            ("repro.data", ["make_dataset", "make_node_splits",
                            "make_canaries"]),
            ("repro.graph", ["PeerSwapSampler", "FreshGraphSampler",
                             "lambda2", "simulate_lambda2_decay",
                             "mixing_time", "ramanujan_lambda2"]),
            ("repro.gossip", ["BaseGossipProtocol", "SAMOProtocol",
                              "PartialMergeGossipProtocol",
                              "GossipSimulator"]),
            ("repro.privacy", ["mpe_scores", "mia_accuracy", "tpr_at_fpr",
                               "RDPAccountant", "calibrate_sigma",
                               "ShadowModelAttack", "compare_attacks"]),
            ("repro.metrics", ["evaluate_model", "RoundRecord", "RunResult"]),
            ("repro.experiments", ["scaled_config", "run_experiment",
                                   "save_result", "figures", "tables"]),
        ],
    )
    def test_documented_symbols_exist(self, module, symbols):
        mod = importlib.import_module(module)
        for symbol in symbols:
            assert hasattr(mod, symbol), f"{module}.{symbol} missing"

    def test_all_exports_resolve(self):
        """Every name in each subpackage's __all__ must exist."""
        for name in (
            "repro", "repro.nn", "repro.data", "repro.graph",
            "repro.gossip", "repro.privacy", "repro.metrics",
            "repro.experiments",
        ):
            mod = importlib.import_module(name)
            for symbol in getattr(mod, "__all__", []):
                assert hasattr(mod, symbol), f"{name}.{symbol} in __all__ but missing"
