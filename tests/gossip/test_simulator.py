"""Integration tests for the discrete-event gossip simulator."""

import numpy as np
import pytest

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    GossipSimulator,
    LocalTrainer,
    SimulatorConfig,
    TrainerConfig,
    make_protocol,
)
from repro.nn import build_mlp, get_state
from repro.nn.serialize import state_to_vector


def build_simulator(
    protocol_name="samo",
    n_nodes=6,
    view_size=2,
    dynamic=False,
    seed=0,
    ticks_per_round=20,
    local_epochs=1,
):
    model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(
            learning_rate=0.05,
            momentum=0.0,
            local_epochs=local_epochs,
            batch_size=8,
        ),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 300, 30, num_features=16, num_classes=4, seed=seed
    )
    splits = make_node_splits(
        train, n_nodes, train_per_node=16, test_per_node=8, seed=seed
    )
    protocol = make_protocol(protocol_name, trainer)
    config = SimulatorConfig(
        n_nodes=n_nodes,
        view_size=view_size,
        dynamic=dynamic,
        ticks_per_round=ticks_per_round,
        wake_mu=ticks_per_round,
        wake_sigma=ticks_per_round / 10,
        seed=seed,
    )
    return GossipSimulator(config, protocol, splits, get_state(model)), model


class TestConstruction:
    def test_all_nodes_start_from_shared_model(self):
        sim, _ = build_simulator()
        vecs = [state_to_vector(s) for s in sim.states()]
        for v in vecs[1:]:
            np.testing.assert_array_equal(v, vecs[0])

    def test_rejects_split_count_mismatch(self):
        sim, model = build_simulator()
        with pytest.raises(ValueError):
            GossipSimulator(
                sim.config, sim.protocol, sim.nodes[0:2], get_state(model)
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=1)
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=4)


class TestExecution:
    def test_messages_flow(self):
        sim, _ = build_simulator()
        sim.run(rounds=2)
        assert sim.messages_sent > 0

    def test_models_diverge_from_init_and_each_other(self):
        sim, _ = build_simulator()
        init = state_to_vector(sim.states()[0]).copy()
        sim.run(rounds=3)
        vecs = [state_to_vector(s) for s in sim.states()]
        assert any(not np.allclose(v, init) for v in vecs)
        # Nodes hold different data, so models differ across nodes.
        assert any(not np.allclose(vecs[0], v) for v in vecs[1:])

    def test_round_callback_invoked_each_round(self):
        sim, _ = build_simulator()
        calls = []
        sim.run(rounds=4, round_callback=lambda r, s: calls.append(r))
        assert calls == [0, 1, 2, 3]

    def test_clock_advances_by_round_ticks(self):
        sim, _ = build_simulator(ticks_per_round=20)
        sim.run(rounds=3)
        assert sim.clock.tick == 60

    def test_samo_sends_view_size_models_per_wake(self):
        """SAMO message count per wake equals the view size."""
        sim, _ = build_simulator(protocol_name="samo", view_size=2)
        sim.run(rounds=2)
        # Each wake-up sends exactly 2; total must be even.
        assert sim.messages_sent % 2 == 0

    def test_base_gossip_sends_fewer_messages_than_samo(self):
        base, _ = build_simulator(protocol_name="base_gossip", view_size=3, seed=1)
        samo, _ = build_simulator(protocol_name="samo", view_size=3, seed=1)
        base.run(rounds=3)
        samo.run(rounds=3)
        assert samo.messages_sent > base.messages_sent

    def test_deterministic_given_seed(self):
        a, _ = build_simulator(seed=11)
        b, _ = build_simulator(seed=11)
        a.run(rounds=2)
        b.run(rounds=2)
        for sa, sb in zip(a.states(), b.states()):
            np.testing.assert_array_equal(state_to_vector(sa), state_to_vector(sb))

    def test_different_seeds_differ(self):
        a, _ = build_simulator(seed=11)
        b, _ = build_simulator(seed=12)
        a.run(rounds=2)
        b.run(rounds=2)
        assert any(
            not np.array_equal(state_to_vector(sa), state_to_vector(sb))
            for sa, sb in zip(a.states(), b.states())
        )

    def test_dynamic_topology_changes_views(self):
        sim, _ = build_simulator(dynamic=True)
        before = sim.sampler.views()
        sim.run(rounds=2)
        assert sim.sampler.views() != before

    def test_static_topology_views_frozen(self):
        sim, _ = build_simulator(dynamic=False)
        before = sim.sampler.views()
        sim.run(rounds=2)
        assert sim.sampler.views() == before

    def test_no_self_messages(self):
        sim, _ = build_simulator()
        sim.log.keep_payloads = True
        sim.run(rounds=2)
        for m in sim.log.messages:
            assert m.sender != m.receiver


class TestConvergence:
    def test_gossip_brings_models_closer_than_isolated_training(self):
        """With mixing, node models stay closer together than purely
        local training would leave them — the consensus effect that
        Section 4 formalizes."""
        sim, _ = build_simulator(protocol_name="samo", view_size=3, seed=2)
        sim.run(rounds=4)
        vecs = np.stack([state_to_vector(s) for s in sim.states()])
        spread_gossip = np.linalg.norm(vecs - vecs.mean(axis=0), axis=1).mean()

        # Isolated: same trainer, no communication.
        iso, _ = build_simulator(protocol_name="samo", view_size=3, seed=2)
        for node in iso.nodes:
            for _ in range(4):
                node.state = iso.protocol.trainer.train(
                    node.state, node.train_x, node.train_y, node.rng
                )
        iso_vecs = np.stack([state_to_vector(s) for s in iso.states()])
        spread_iso = np.linalg.norm(
            iso_vecs - iso_vecs.mean(axis=0), axis=1
        ).mean()
        assert spread_gossip < spread_iso
