"""Tests for the sharded shared-memory execution subsystem."""

import os
import pickle
import subprocess
import sys
from functools import partial

import numpy as np
import pytest

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    RowPartitioner,
    SerialExecutor,
    ShardedExecutor,
    StateArena,
    TrainerConfig,
    UpdateTask,
)
from repro.gossip.shard import encode_tasks
from repro.gossip.trainer import LocalTrainer
from repro.nn import build_mlp, get_state
from repro.nn.flat import SharedArena, StateLayout
from repro.nn.models import build_model


def segment_exists(name: str) -> bool:
    """Probe a shared-memory segment without registering an attachment."""
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestRowPartitioner:
    def test_contiguous_covers_rows_disjointly(self):
        shards = RowPartitioner("contiguous").partition(10, 3)
        assert len(shards) == 3
        combined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(combined), np.arange(10))
        # Contiguous means each shard is a run of consecutive rows.
        for rows in shards:
            np.testing.assert_array_equal(
                rows, np.arange(rows[0], rows[0] + rows.size)
            )

    def test_contiguous_row_counts_balanced(self):
        shards = RowPartitioner("contiguous").partition(11, 4)
        sizes = [rows.size for rows in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_rows_leaves_trailing_empties(self):
        shards = RowPartitioner("contiguous").partition(2, 5)
        assert len(shards) == 5
        assert [rows.size for rows in shards] == [1, 1, 0, 0, 0]

    def test_balanced_equal_counts_balances_row_counts(self):
        shards = RowPartitioner("balanced").partition(10, 3)
        combined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(combined), np.arange(10))
        sizes = [rows.size for rows in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_balanced_equalizes_sample_loads(self):
        """Greedy LPT: no shard's sample total can exceed another's by
        more than the largest single node (the classic LPT bound is
        even tighter; this is the property the executor relies on)."""
        counts = [100, 1, 1, 1, 50, 50, 2, 3, 97, 1]
        shards = RowPartitioner("balanced").partition(
            10, 3, sample_counts=counts
        )
        combined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(combined), np.arange(10))
        loads = [sum(counts[i] for i in rows) for rows in shards]
        assert max(loads) - min(loads) <= max(counts)
        # This instance solves exactly: 102 / 102 / 102.
        assert loads == [102, 102, 102]

    def test_balanced_is_deterministic(self):
        counts = [7, 7, 3, 3, 5, 5, 1]
        first = RowPartitioner("balanced").partition(7, 2, sample_counts=counts)
        second = RowPartitioner("balanced").partition(7, 2, sample_counts=counts)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="strategy"):
            RowPartitioner("roundrobin")
        partitioner = RowPartitioner()
        with pytest.raises(ValueError, match="n_rows"):
            partitioner.partition(0, 2)
        with pytest.raises(ValueError, match="n_shards"):
            partitioner.partition(4, 0)
        with pytest.raises(ValueError, match="sample counts"):
            partitioner.partition(4, 2, sample_counts=[1, 2])


MODEL_BUILDER = partial(build_mlp, 16, 4, hidden=(8,))


def _exploding_builder():
    raise RuntimeError("workspace model construction exploded")


def make_fixture(n_nodes=6, dtype=np.float64, seed=0, shared=True):
    """Layout, splits, trainer config and a loaded arena for executor
    tests (no simulator involved)."""
    model = MODEL_BUILDER(rng=np.random.default_rng(0))
    template = get_state(model)
    layout = StateLayout.from_state(template)
    train, _ = make_synthetic_tabular_dataset(
        "t", 300, 30, num_features=16, num_classes=4, seed=seed
    )
    splits = make_node_splits(
        train, n_nodes, train_per_node=16, test_per_node=8, seed=seed
    )
    config = TrainerConfig(
        learning_rate=0.05, momentum=0.9, local_epochs=1, batch_size=8,
        lr_decay=0.5,
    )
    arena = StateArena(layout, n_nodes, dtype=dtype, shared=shared)
    rng = np.random.default_rng(seed + 1)
    for i in range(n_nodes):
        arena.load_state(
            i,
            {k: v + 0.1 * rng.normal(size=v.shape) for k, v in template.items()},
        )
    return model, layout, splits, config, arena


def make_tasks(arena, n_nodes, seed=100, copy=False):
    return [
        UpdateTask(
            i,
            arena.row(i).copy() if copy else arena.row(i),
            np.random.default_rng(seed + i),
            session=i % 3,
        )
        for i in range(n_nodes)
    ]


class TestShardedExecutor:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_shards=1),  # degenerate single shard
            dict(n_shards=2),
            dict(n_shards=2, partition="balanced"),
            dict(n_shards=99),  # more shards than nodes: clamps
        ],
        ids=["one-shard", "two-shards", "balanced", "overshard"],
    )
    def test_same_tasks_match_serial(self, kwargs):
        model, layout, splits, config, arena = make_fixture()
        serial = SerialExecutor(LocalTrainer(model, config), layout, splits)
        serial_results = serial.train_batch(
            make_tasks(arena, 6, copy=True)
        )
        sharded = ShardedExecutor(
            MODEL_BUILDER, config, layout, splits, arena, **kwargs
        )
        try:
            # Result vectors are views into the shared segment; copy
            # them out before releasing it (the documented contract).
            sharded_results = [
                (vector.copy(), rng)
                for vector, rng in sharded.train_batch(make_tasks(arena, 6))
            ]
        finally:
            serial.close()
            sharded.close()
            arena.release()
        assert sharded.n_shards <= 6
        for (serial_vec, serial_rng), (sharded_vec, sharded_rng) in zip(
            serial_results, sharded_results
        ):
            np.testing.assert_array_equal(serial_vec, sharded_vec)
            assert serial_rng.random() == sharded_rng.random()

    def test_results_written_into_shared_arena(self):
        """The executor's outputs ARE the arena rows (no copy-back)."""
        model, layout, splits, config, arena = make_fixture()
        before = arena.data.copy()
        sharded = ShardedExecutor(
            MODEL_BUILDER, config, layout, splits, arena, n_shards=2
        )
        try:
            results = sharded.train_batch(make_tasks(arena, 6))
        finally:
            sharded.close()
        for i, (vector, _) in enumerate(results):
            assert np.shares_memory(vector, arena.data)
            assert not np.array_equal(vector, before[i])
        arena.release()

    def test_task_payload_carries_no_state_vectors(self):
        """The zero-copy contract, asserted on the real wire payload:
        what goes to a shard worker is row indices, sessions and
        generator states — its pickled size must not scale with the
        model dimension, and it must contain no arrays at all."""
        model, layout, splits, config, arena = make_fixture()
        try:
            tasks = make_tasks(arena, 6)
            payload = encode_tasks(tasks)

            def walk(obj):
                if isinstance(obj, np.ndarray):
                    yield obj
                elif isinstance(obj, dict):
                    for value in obj.values():
                        yield from walk(value)
                elif isinstance(obj, (list, tuple)):
                    for value in obj:
                        yield from walk(value)

            assert list(walk(payload)) == []
            # ~100 bytes per task (ints + a PCG64 state dict); the
            # model vector alone would be dim * 8 = a lot more.
            assert len(pickle.dumps(payload)) < 250 * len(tasks)
            assert len(pickle.dumps(payload)) < layout.dim * 8
        finally:
            arena.release()

    def test_requires_shared_arena(self):
        model, layout, splits, config, arena = make_fixture(shared=False)
        with pytest.raises(ValueError, match="shared-memory arena"):
            ShardedExecutor(MODEL_BUILDER, config, layout, splits, arena)

    def test_requires_model_builder(self):
        model, layout, splits, config, arena = make_fixture()
        try:
            with pytest.raises(ValueError, match="model_builder"):
                ShardedExecutor(None, config, layout, splits, arena)
        finally:
            arena.release()

    def test_close_is_idempotent_and_train_after_close_raises(self):
        model, layout, splits, config, arena = make_fixture()
        sharded = ShardedExecutor(
            MODEL_BUILDER, config, layout, splits, arena, n_shards=2
        )
        sharded.close()
        sharded.close()
        assert all(not p.is_alive() for p in sharded._procs)
        with pytest.raises(RuntimeError, match="closed"):
            sharded.train_batch(make_tasks(arena, 6))
        arena.release()

    def test_worker_init_failure_surfaces_traceback_not_broken_pipe(self):
        """A worker that dies during setup (bad model_builder) sends a
        diagnostic and exits; the first train_batch must raise that
        traceback as a RuntimeError, never a bare BrokenPipeError."""
        model, layout, splits, config, arena = make_fixture()
        sharded = ShardedExecutor(
            _exploding_builder, config, layout, splits, arena, n_shards=2
        )
        try:
            with pytest.raises(RuntimeError, match="shard worker"):
                sharded.train_batch(make_tasks(arena, 6))
        finally:
            sharded.close()
            arena.release()

    def test_config_swap_after_construction_reaches_workers(self):
        """The engine swaps trainer.config after construction (DP
        install); with the live trainer attached, shards must train
        with the new config — matching serial bit for bit."""
        from dataclasses import replace

        model, layout, splits, config, arena = make_fixture()
        trainer = LocalTrainer(model, config)
        sharded = ShardedExecutor(
            MODEL_BUILDER, config, layout, splits, arena, n_shards=2,
            trainer=trainer,
        )
        try:
            swapped = replace(config, learning_rate=0.005, lr_decay=0.9)
            trainer.config = swapped
            serial = SerialExecutor(
                LocalTrainer(MODEL_BUILDER(rng=np.random.default_rng(0)),
                             swapped),
                layout, splits,
            )
            serial_results = serial.train_batch(make_tasks(arena, 6, copy=True))
            serial.close()
            sharded_results = [
                (vector.copy(), rng)
                for vector, rng in sharded.train_batch(make_tasks(arena, 6))
            ]
        finally:
            sharded.close()
            arena.release()
        for (serial_vec, _), (sharded_vec, _) in zip(
            serial_results, sharded_results
        ):
            np.testing.assert_array_equal(serial_vec, sharded_vec)

    def test_set_config_without_trainer_reaches_workers(self):
        """Without a live trainer attached, an explicit set_config()
        swap is stored and diff-pushed with the next batch."""
        from dataclasses import replace

        model, layout, splits, config, arena = make_fixture()
        sharded = ShardedExecutor(
            MODEL_BUILDER, config, layout, splits, arena, n_shards=2
        )
        try:
            with pytest.raises(TypeError):
                sharded.set_config({"learning_rate": 0.1})
            swapped = replace(config, learning_rate=0.005, lr_decay=0.9)
            sharded.set_config(swapped)
            serial = SerialExecutor(
                LocalTrainer(MODEL_BUILDER(rng=np.random.default_rng(0)),
                             swapped),
                layout, splits,
            )
            serial_results = serial.train_batch(make_tasks(arena, 6, copy=True))
            serial.close()
            sharded_results = [
                (vector.copy(), rng)
                for vector, rng in sharded.train_batch(make_tasks(arena, 6))
            ]
        finally:
            sharded.close()
            arena.release()
        for (serial_vec, _), (sharded_vec, _) in zip(
            serial_results, sharded_results
        ):
            np.testing.assert_array_equal(serial_vec, sharded_vec)

    def test_worker_failure_surfaces_as_runtime_error(self):
        """A task for a row the shard has no split for blows up inside
        the worker; the parent must get the traceback, not a hang."""
        model, layout, splits, config, arena = make_fixture()
        sharded = ShardedExecutor(
            MODEL_BUILDER, config, layout, splits, arena, n_shards=2
        )
        try:
            bad_rng = np.random.default_rng(0)
            # node_id 5 belongs to shard 1; send it a task claiming
            # node 0's row is its own via a forged shard map.
            sharded._shard_of[0] = 1
            with pytest.raises(RuntimeError, match="failed"):
                sharded.train_batch(
                    [UpdateTask(0, arena.row(0), bad_rng, session=0)]
                )
        finally:
            sharded.close()
            arena.release()


ARCHS = [
    ("mlp", dict(in_features=20, num_classes=7, hidden=(16, 8)), (20,)),
    ("cnn", dict(in_channels=3, image_size=8, num_classes=5, width=4),
     (3, 8, 8)),
    ("resnet8", dict(in_channels=3, num_classes=6, width=4), (3, 8, 8)),
]


class TestShardedFamilies:
    """The sharded executor against every Table-2 model family:
    bit-identical to serial in float64, bounded drift in float32."""

    def _run(self, arch, kwargs, sample_shape, dtype):
        n_nodes, n = 5, 12
        builder = partial(build_model, arch, **kwargs)
        model = builder()
        template = get_state(model)
        layout = StateLayout.from_state(template)
        rng = np.random.default_rng(3)
        arena = StateArena(layout, n_nodes, dtype=dtype, shared=True)
        splits = {}
        for i in range(n_nodes):
            arena.load_state(
                i,
                {
                    k: v + 0.1 * rng.normal(size=v.shape)
                    for k, v in template.items()
                },
            )
            splits[i] = (
                rng.normal(size=(n,) + sample_shape),
                rng.integers(0, kwargs["num_classes"], size=n),
            )
        config = TrainerConfig(
            learning_rate=0.05, momentum=0.9, weight_decay=5e-4,
            local_epochs=2, batch_size=5, lr_decay=0.7,
        )
        serial = SerialExecutor(LocalTrainer(model, config), layout, splits)
        serial_results = serial.train_batch(
            make_tasks(arena, n_nodes, copy=True)
        )
        serial.close()
        sharded = ShardedExecutor(
            builder, config, layout, splits, arena, n_shards=2
        )
        try:
            sharded_results = [
                (vector.copy(), rng)
                for vector, rng in sharded.train_batch(
                    make_tasks(arena, n_nodes)
                )
            ]
        finally:
            sharded.close()
            arena.release()
        return serial_results, sharded_results

    @pytest.mark.parametrize("arch,kwargs,sample_shape", ARCHS)
    def test_bit_identical_to_serial_in_float64(
        self, arch, kwargs, sample_shape
    ):
        serial_results, sharded_results = self._run(
            arch, kwargs, sample_shape, np.float64
        )
        for (serial_vec, _), (sharded_vec, _) in zip(
            serial_results, sharded_results
        ):
            np.testing.assert_array_equal(serial_vec, sharded_vec)

    @pytest.mark.parametrize("arch,kwargs,sample_shape", ARCHS)
    def test_float32_drift_bounded(self, arch, kwargs, sample_shape):
        """On a float32 arena both paths train in float32; they may
        round differently (blocked vs per-row op order) but must stay
        within rounding distance of each other."""
        serial_results, sharded_results = self._run(
            arch, kwargs, sample_shape, np.float32
        )
        for (serial_vec, _), (sharded_vec, _) in zip(
            serial_results, sharded_results
        ):
            assert sharded_vec.dtype == np.float32
            scale = np.linalg.norm(serial_vec.astype(np.float64))
            drift = np.linalg.norm(
                sharded_vec.astype(np.float64)
                - serial_vec.astype(np.float64)
            )
            assert drift / scale < 1e-4


class TestSharedSegmentLifecycle:
    def test_crash_cleanup_unlinks_segment(self, tmp_path):
        """A process that creates a shared arena and dies on an
        exception mid-run must not leak its /dev/shm segment: the
        finalizer guard releases it at interpreter exit."""
        name_file = tmp_path / "segment_name"
        script = (
            "import sys\n"
            "from repro.gossip import StateArena\n"
            "from repro.nn import build_mlp, get_state\n"
            "from repro.nn.flat import StateLayout\n"
            "import numpy as np\n"
            "layout = StateLayout.from_state("
            "get_state(build_mlp(8, 3, hidden=(4,))))\n"
            "arena = StateArena(layout, 4, shared=True)\n"
            f"open({str(name_file)!r}, 'w').write(arena.shared_name)\n"
            "raise RuntimeError('simulated crash mid-run')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode != 0
        assert "simulated crash" in proc.stderr
        name = name_file.read_text()
        assert name
        assert not segment_exists(name)

    def test_explicit_release_keeps_data_readable(self):
        model, layout, splits, config, arena = make_fixture()
        name = arena.shared_name
        snapshot = arena.data.copy()
        arena.release()
        assert arena.shared_name is None
        assert not segment_exists(name)
        np.testing.assert_array_equal(arena.data, snapshot)
        arena.release()  # idempotent

    def test_simulator_context_manager_releases_everything(self):
        from repro.gossip import (
            LocalTrainer as LT,
            SimulatorConfig,
            make_protocol,
            make_simulator,
        )

        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LT(
            model,
            TrainerConfig(learning_rate=0.05, local_epochs=1, batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 300, 30, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 6, train_per_node=16, test_per_node=8, seed=0
        )
        config = SimulatorConfig(
            n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
            wake_sigma=2, executor="sharded", n_shards=2, seed=0,
        )
        with make_simulator(
            config, make_protocol("samo", trainer), splits,
            get_state(model), model_builder=MODEL_BUILDER,
        ) as sim:
            sim.run(2)
            name = sim.arena.shared_name
            assert name is not None
            executor = sim.executor()
        assert not segment_exists(name)
        assert all(not p.is_alive() for p in executor._procs)
        # Node-state views were rebound over the private copy: reading
        # and snapshotting still works after the segment died.
        assert np.isfinite(sim.arena.data).all()
        state = sim.nodes[0].state
        np.testing.assert_array_equal(
            state[sim.layout.names[0]].ravel(),
            sim.arena.row(0)[: state[sim.layout.names[0]].size],
        )

    def test_context_manager_releases_on_exception(self):
        from repro.gossip import (
            LocalTrainer as LT,
            SimulatorConfig,
            make_protocol,
            make_simulator,
        )

        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LT(
            model,
            TrainerConfig(learning_rate=0.05, local_epochs=1, batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 300, 30, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 6, train_per_node=16, test_per_node=8, seed=0
        )
        config = SimulatorConfig(
            n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
            wake_sigma=2, executor="sharded", n_shards=2, seed=0,
        )
        with pytest.raises(RuntimeError, match="boom"):
            with make_simulator(
                config, make_protocol("samo", trainer), splits,
                get_state(model), model_builder=MODEL_BUILDER,
            ) as sim:
                sim.run(1)
                name = sim.arena.shared_name
                raise RuntimeError("boom")
        assert not segment_exists(name)
