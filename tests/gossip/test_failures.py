"""Tests for failure injection (message loss, node churn) and the
partial-aggregation protocol variant."""

import numpy as np
import pytest

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    GossipSimulator,
    LocalTrainer,
    PartialMergeGossipProtocol,
    SimulatorConfig,
    TrainerConfig,
    make_protocol,
)
from repro.nn import build_mlp, get_state
from repro.nn.serialize import average_states, state_to_vector


def build_simulator(drop_prob=0.0, failure_prob=0.0, sampler=None,
                    protocol_name="samo", seed=0):
    model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=1,
                      batch_size=8),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 300, 30, num_features=16, num_classes=4, seed=seed
    )
    splits = make_node_splits(train, 6, train_per_node=16, test_per_node=8,
                              seed=seed)
    config = SimulatorConfig(
        n_nodes=6, view_size=2, sampler=sampler,
        ticks_per_round=20, wake_mu=20, wake_sigma=2,
        drop_prob=drop_prob, failure_prob=failure_prob, seed=seed,
    )
    return GossipSimulator(
        config, make_protocol(protocol_name, trainer), splits, get_state(model)
    )


class TestMessageLoss:
    def test_no_drops_by_default(self):
        sim = build_simulator()
        sim.run(rounds=2)
        assert sim.messages_dropped == 0

    def test_drops_happen_and_are_counted(self):
        sim = build_simulator(drop_prob=0.5)
        sim.run(rounds=3)
        assert sim.messages_dropped > 0
        # Dropped messages never reach the log.
        total_attempts = sim.messages_sent + sim.messages_dropped
        assert sim.messages_sent < total_attempts

    def test_heavy_loss_still_progresses(self):
        """Gossip degrades gracefully: even at 70% loss, training
        continues and models evolve."""
        sim = build_simulator(drop_prob=0.7)
        init = state_to_vector(sim.states()[0]).copy()
        sim.run(rounds=3)
        assert any(
            not np.allclose(state_to_vector(s), init) for s in sim.states()
        )

    def test_drop_prob_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, drop_prob=1.0)


class TestNodeChurn:
    def test_no_skips_by_default(self):
        sim = build_simulator()
        sim.run(rounds=2)
        assert sim.wakes_skipped == 0

    def test_skips_counted(self):
        sim = build_simulator(failure_prob=0.5)
        sim.run(rounds=3)
        assert sim.wakes_skipped > 0

    def test_failed_wake_sends_nothing(self):
        quiet = build_simulator(failure_prob=0.9, seed=3)
        noisy = build_simulator(failure_prob=0.0, seed=3)
        quiet.run(rounds=2)
        noisy.run(rounds=2)
        assert quiet.messages_sent < noisy.messages_sent

    def test_failure_prob_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, failure_prob=-0.1)


class TestSamplerSelection:
    def test_fresh_sampler_by_name(self):
        sim = build_simulator(sampler="fresh")
        assert sim.sampler.dynamic
        before = sim.sampler.views()
        sim.run(rounds=3)
        assert sim.sampler.views() != before

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError):
            build_simulator(sampler="smallworld")

    def test_sampler_name_derivation(self):
        assert SimulatorConfig(n_nodes=4, view_size=2).sampler_name == "static"
        assert (
            SimulatorConfig(n_nodes=4, view_size=2, dynamic=True).sampler_name
            == "peerswap"
        )
        assert (
            SimulatorConfig(n_nodes=4, view_size=2, sampler="fresh").sampler_name
            == "fresh"
        )


class TestPartialMerge:
    def test_registered_in_factory(self):
        sim = build_simulator(protocol_name="base_gossip_partial")
        assert isinstance(sim.protocol, PartialMergeGossipProtocol)
        assert sim.protocol.merge_weight == 0.25

    def test_partial_merge_keeps_state_closer_to_own(self):
        model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=0,
                          batch_size=8),
        )
        from repro.gossip import BaseGossipProtocol, GossipNode

        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 10, num_features=16, num_classes=4, seed=0
        )
        split = make_node_splits(train, 2, train_per_node=16,
                                 test_per_node=8, seed=0)[0]
        init = get_state(model)
        incoming = {k: v + 1.0 for k, v in init.items()}

        def merged_distance(protocol):
            node = GossipNode(
                node_id=0,
                state={k: v.copy() for k, v in init.items()},
                split=split,
                rng=np.random.default_rng(1),
            )
            protocol.on_receive(node, dict(incoming))
            return np.linalg.norm(
                state_to_vector(node.state) - state_to_vector(init)
            )

        full = merged_distance(BaseGossipProtocol(trainer))
        partial = merged_distance(PartialMergeGossipProtocol(trainer))
        assert partial < full  # partial merge moves less toward the peer

    def test_merge_weight_validation(self):
        model = build_mlp(8, 2, hidden=(4,), rng=np.random.default_rng(0))
        trainer = LocalTrainer(model, TrainerConfig())
        from repro.gossip import BaseGossipProtocol

        with pytest.raises(ValueError):
            BaseGossipProtocol(trainer, merge_weight=0.0)
        with pytest.raises(ValueError):
            BaseGossipProtocol(trainer, merge_weight=1.5)

    def test_exact_partial_average(self):
        """merge_weight w gives (1-w) own + w incoming exactly."""
        s0 = {"w": np.array([0.0])}
        s1 = {"w": np.array([8.0])}
        out = average_states([s0, s1], weights=[0.75, 0.25])
        assert out["w"][0] == pytest.approx(2.0)


class TestMessageLatency:
    def test_zero_delay_is_instant(self):
        sim = build_simulator()
        sim.run(rounds=2)
        assert sim.messages_in_flight == 0

    def test_delayed_messages_queue_then_deliver(self):
        model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=0,
                          batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 300, 30, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(train, 6, train_per_node=16,
                                  test_per_node=8, seed=0)
        config = SimulatorConfig(
            n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
            wake_sigma=2, delay_ticks=5, seed=0,
        )
        sim = GossipSimulator(
            config, make_protocol("samo", trainer), splits, get_state(model)
        )
        sim.run_round()
        sent = sim.messages_sent
        assert sent > 0
        # All sent messages eventually arrive: SAMO buffers them, so
        # total receptions equal deliveries.
        for _ in range(3):
            sim.run_round()
        received = sum(n.models_received for n in sim.nodes)
        assert received == sim.messages_sent - sim.messages_in_flight
        sim.close()

    def test_latency_slows_mixing(self):
        """Stale models mix worse: with large delays the node models
        stay further apart after the same number of rounds."""
        from repro.nn.serialize import state_to_vector

        def spread(delay):
            sim = build_simulator(seed=4)
            # Rebuild with delay via a fresh config.
            config = SimulatorConfig(
                n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
                wake_sigma=2, delay_ticks=delay, seed=4,
            )
            sim2 = GossipSimulator(
                config, sim.protocol, [n.split for n in sim.nodes],
                sim.nodes[0].snapshot(),
            )
            rng = np.random.default_rng(42)
            for node in sim2.nodes:
                for arr in node.state.values():
                    arr += rng.normal(0, 1.0, size=arr.shape)
            sim2.run(rounds=4)
            vecs = np.stack([state_to_vector(s) for s in sim2.states()])
            sim2.close()
            return np.linalg.norm(vecs - vecs.mean(axis=0), axis=1).mean()

        assert spread(0) < spread(15)

    def test_delay_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, delay_ticks=-1)
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, delay_jitter=-1)

    def test_jitter_spreads_delivery(self):
        config = SimulatorConfig(
            n_nodes=4, view_size=2, delay_ticks=2, delay_jitter=3
        )
        assert config.delay_jitter == 3


class TestInFlightIsolation:
    """Messages in flight must be immune to later sender mutations."""

    def _delayed_sim(self, delay_ticks=5, local_epochs=0):
        model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0,
                          local_epochs=local_epochs, batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 300, 30, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(train, 6, train_per_node=16,
                                  test_per_node=8, seed=0)
        config = SimulatorConfig(
            n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
            wake_sigma=2, delay_ticks=delay_ticks, seed=0,
        )
        return GossipSimulator(
            config, make_protocol("samo", trainer), splits, get_state(model)
        )

    def test_sender_mutation_does_not_reach_in_flight_payload(self):
        """Regression: _send used to enqueue the payload dict by
        reference, so a sender training after the send rewrote the
        message on the wire."""
        sim = self._delayed_sim(delay_ticks=3)
        payload = sim.nodes[0].snapshot()
        original = {k: v.copy() for k, v in payload.items()}
        sim._send(0, 1, payload)
        for arr in payload.values():  # sender keeps training...
            arr += 1234.5
        for _ in range(4):  # ...while the message rides the wire
            sim.clock.advance()
        sim._deliver_due()
        assert len(sim.nodes[1].inbox) == 1
        delivered = sim.nodes[1].inbox[0]
        for name in original:
            np.testing.assert_array_equal(delivered[name], original[name])

    def test_run_tallies_undelivered_messages(self):
        """Messages still in flight at the end of run() are counted,
        and messages due at the final tick are delivered."""
        sim = self._delayed_sim(delay_ticks=10_000)
        sim.run(rounds=2)
        assert sim.messages_sent > 0
        assert sim.messages_undelivered == sim.messages_in_flight
        assert sim.messages_undelivered == sim.messages_sent

    def test_run_delivers_messages_due_at_final_tick(self):
        sim = self._delayed_sim(delay_ticks=1)
        sim._send(0, 1, sim.nodes[0].snapshot())  # due at tick 1
        sim.clock.advance()  # horizon ends exactly at the due tick
        sim.run(rounds=0)
        assert len(sim.nodes[1].inbox) == 1
        assert sim.messages_undelivered == sim.messages_in_flight
