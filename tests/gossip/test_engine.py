"""Tests for the flat-buffer execution engine."""

from functools import partial

import numpy as np
import pytest

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    BatchedExecutor,
    FlatGossipSimulator,
    GossipSimulator,
    LocalTrainer,
    SerialExecutor,
    SimulatorConfig,
    StateArena,
    TrainerConfig,
    UpdateTask,
    make_protocol,
    make_simulator,
)
from repro.nn import build_mlp, get_state
from repro.nn.flat import StateLayout
from repro.nn.serialize import state_to_vector

MODEL_BUILDER = partial(build_mlp, 16, 4, hidden=(8,))


def build_flat(
    protocol_name="samo",
    n_nodes=6,
    engine="flat",
    executor="serial",
    arena_dtype="float64",
    seed=0,
    lr_decay=1.0,
    momentum=0.0,
    dp=None,
    dropout=0.0,
    max_updates=None,
    **config_kwargs,
):
    builder = (
        MODEL_BUILDER
        if dropout == 0.0
        else partial(build_mlp, 16, 4, hidden=(8,), dropout=dropout)
    )
    model = builder(rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(
            learning_rate=0.05,
            momentum=momentum,
            local_epochs=1,
            batch_size=8,
            lr_decay=lr_decay,
            dp=dp,
        ),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 300, 30, num_features=16, num_classes=4, seed=seed
    )
    splits = make_node_splits(
        train, n_nodes, train_per_node=16, test_per_node=8, seed=seed
    )
    protocol = make_protocol(protocol_name, trainer)
    protocol.max_updates_per_node = max_updates
    config = SimulatorConfig(
        n_nodes=n_nodes,
        view_size=2,
        ticks_per_round=20,
        wake_mu=20,
        wake_sigma=2,
        engine=engine,
        executor=executor,
        arena_dtype=arena_dtype,
        seed=seed,
        **config_kwargs,
    )
    return make_simulator(
        config,
        protocol,
        splits,
        get_state(model),
        model_builder=builder,
    )


class TestStateArena:
    def _arena(self, n_nodes=4, dtype=np.float64):
        state = get_state(MODEL_BUILDER(rng=np.random.default_rng(0)))
        layout = StateLayout.from_state(state)
        return StateArena(layout, n_nodes, dtype=dtype), state

    def test_load_and_view_round_trip(self):
        arena, state = self._arena()
        arena.load_state(2, state)
        view = arena.state_view(2)
        np.testing.assert_array_equal(
            state_to_vector(view), state_to_vector(state)
        )

    def test_views_are_live(self):
        arena, state = self._arena()
        arena.load_state(0, state)
        view = arena.state_view(0)
        arena.row(0)[:] = 7.0
        name = arena.layout.names[0]
        assert view[name].flat[0] == 7.0

    def test_average_rows_matches_numpy_mean(self):
        arena, _ = self._arena()
        rng = np.random.default_rng(3)
        arena.data[:] = rng.normal(size=arena.data.shape)
        avg = arena.average_rows([0, 1, 3])
        np.testing.assert_allclose(avg, arena.data[[0, 1, 3]].mean(axis=0))

    def test_average_rows_weighted(self):
        arena, _ = self._arena()
        arena.data[0] = 0.0
        arena.data[1] = 6.0
        avg = arena.average_rows([0, 1], weights=[2.0, 1.0])
        np.testing.assert_allclose(avg, np.full(arena.dim, 2.0))

    def test_average_rows_rejects_zero_weight_total(self):
        arena, _ = self._arena()
        with pytest.raises(ValueError):
            arena.average_rows([0, 1], weights=[1.0, -1.0])

    def test_merge_row_pairwise(self):
        arena, _ = self._arena()
        arena.data[0] = 1.0
        payload = np.full(arena.dim, 3.0)
        arena.merge_row(0, payload, weight=0.5)
        np.testing.assert_allclose(arena.row(0), np.full(arena.dim, 2.0))

    def test_float32_storage(self):
        arena, state = self._arena(dtype=np.float32)
        arena.load_state(0, state)
        assert arena.data.dtype == np.float32
        assert arena.state_view(0)[arena.layout.names[0]].dtype == np.float32


class TestMakeSimulator:
    def test_dict_engine_returns_legacy_simulator(self):
        sim = build_flat(engine="dict")
        assert type(sim) is GossipSimulator

    def test_flat_engine_returns_flat_simulator(self):
        sim = build_flat(engine="flat")
        assert isinstance(sim, FlatGossipSimulator)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, engine="gpu")
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, executor="thread")
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, arena_dtype="float16")
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, n_shards=-1)
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, shard_partition="rr")
        # The sharded executor and its knobs are accepted.
        config = SimulatorConfig(
            n_nodes=4, view_size=2, executor="sharded", n_shards=2,
            shard_partition="balanced",
        )
        assert config.executor == "sharded"


class TestFlatSimulator:
    def test_nodes_share_initial_model(self):
        sim = build_flat()
        assert np.all(sim.arena.data == sim.arena.data[0])

    def test_node_state_is_arena_view(self):
        """The dict-State compat layer: node.state reads through to the
        arena, so attacks and metrics code see live models."""
        sim = build_flat()
        sim.arena.row(3)[:] = 42.0
        name = sim.layout.names[0]
        assert sim.nodes[3].state[name].flat[0] == 42.0
        # snapshot() still detaches.
        snap = sim.nodes[3].snapshot()
        sim.arena.row(3)[:] = 0.0
        assert snap[name].flat[0] == 42.0

    @pytest.mark.parametrize("protocol_name", ["samo", "base_gossip"])
    def test_run_trains_and_communicates(self, protocol_name):
        sim = build_flat(protocol_name)
        initial = sim.arena.data.copy()
        sim.run(3)
        sim.close()
        assert sim.messages_sent > 0
        assert sum(n.updates_performed for n in sim.nodes) > 0
        assert not np.array_equal(sim.arena.data, initial)
        assert np.isfinite(sim.arena.data).all()

    def test_states_snapshot_detached(self):
        sim = build_flat()
        sim.run(1)
        states = sim.states()
        before = state_to_vector(states[0]).copy()
        sim.arena.data[:] += 1.0
        np.testing.assert_array_equal(state_to_vector(states[0]), before)

    def test_update_cap_respected(self):
        sim = build_flat(max_updates=2)
        sim.run(5)
        assert all(n.updates_performed <= 2 for n in sim.nodes)

    def test_partial_merge_weight_honored(self):
        sim = build_flat("base_gossip_partial")
        assert sim._merge_weight == pytest.approx(0.25)
        sim.run(2)
        assert sim.messages_sent > 0

    def test_float32_arena_runs(self):
        sim = build_flat(arena_dtype="float32")
        sim.run(2)
        assert sim.arena.data.dtype == np.float32
        assert sim.states()[0][sim.layout.names[0]].dtype == np.float32
        assert np.isfinite(sim.arena.data).all()

    def test_message_drop_and_failure_injection(self):
        sim = build_flat(drop_prob=0.5, failure_prob=0.3, seed=2)
        sim.run(4)
        assert sim.messages_dropped > 0
        assert sim.wakes_skipped > 0

    def test_delayed_messages_tallied_at_end(self):
        sim = build_flat(delay_ticks=10_000)
        sim.run(2)
        assert sim.messages_undelivered == sim.messages_sent
        assert sim.messages_undelivered == sim.messages_in_flight

    def test_in_flight_payload_frozen_at_send_time(self):
        """Copy-on-enqueue holds on the flat path too: mutating the
        sender's row after a delayed send must not alter the payload."""
        sim = build_flat(delay_ticks=3)
        sim._send_vector(0, 1, sim.arena.row(0))
        frozen = sim._in_flight[0][4].copy()
        sim.arena.row(0)[:] += 99.0
        np.testing.assert_array_equal(sim._in_flight[0][4], frozen)

    def test_empty_split_node_skips_sessions(self):
        """A node without data still gossips (updates_performed grows)
        but its lr_decay session counter must not advance."""
        sim = build_flat(lr_decay=0.5)
        node = sim.nodes[1]
        empty_train = node.split.train.__class__(
            base=node.split.train.base, indices=node.split.train.indices[:0]
        )
        node.split = node.split.__class__(
            node_id=node.split.node_id, train=empty_train, test=node.split.test
        )
        sim.run(3)
        assert sim._sessions[1] == 0
        assert any(s > 0 for s in sim._sessions)

    def test_serial_executor_reuses_protocol_trainer(self):
        sim = build_flat()
        sim.run(1)
        assert sim.executor().trainer is sim.protocol.trainer

    def test_rejects_unknown_protocol(self):
        class FakeProtocol:
            name = "fake"
            trainer = None
            max_updates_per_node = None

        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, engine="flat", seed=0
        )
        with pytest.raises(ValueError, match="flat engine"):
            FlatGossipSimulator(config, FakeProtocol(), splits, get_state(model))


class TestExecutorContract:
    """The shared executor contract, one parametrized suite for every
    backend: same tasks -> same final states as SerialExecutor, bit for
    bit on a float64 arena (replaces the old per-executor checks)."""

    @pytest.mark.parametrize(
        "executor,kwargs",
        [
            ("process", dict(n_workers=2)),
            ("batched", dict()),
            ("batched", dict(train_batch=2)),  # chunked blocks
            ("batched", dict(train_batch=-1)),  # forced per-row path
            ("sharded", dict(n_shards=2)),
            ("sharded", dict(n_shards=2, shard_partition="balanced")),
            ("sharded", dict(n_shards=1)),  # degenerate single shard
            ("sharded", dict(n_shards=2, train_batch=-1)),  # per-row shards
        ],
        ids=[
            "process", "batched", "batched-chunk2", "batched-per-row",
            "sharded", "sharded-balanced", "sharded-one", "sharded-per-row",
        ],
    )
    @pytest.mark.parametrize("protocol_name", ["samo", "base_gossip"])
    def test_run_bit_identical_to_serial(self, protocol_name, executor, kwargs):
        serial = build_flat(
            protocol_name, executor="serial", seed=5, lr_decay=0.5,
            momentum=0.9,
        )
        serial.run(2)
        serial.close()
        other = build_flat(
            protocol_name, executor=executor, seed=5, lr_decay=0.5,
            momentum=0.9, **kwargs,
        )
        other.run(2)
        other.close()
        assert np.array_equal(serial.arena.data, other.arena.data)
        assert serial.messages_sent == other.messages_sent
        assert [n.updates_performed for n in serial.nodes] == [
            n.updates_performed for n in other.nodes
        ]
        assert serial._sessions == other._sessions

    @pytest.mark.parametrize(
        "make_other",
        [
            lambda trainer, layout, splits: BatchedExecutor(
                trainer, layout, splits
            ),
            lambda trainer, layout, splits: BatchedExecutor(
                trainer, layout, splits, train_batch=3
            ),
        ],
        ids=["batched", "batched-chunk3"],
    )
    def test_same_tasks_same_results(self, make_other):
        """Task-level contract: feeding the same UpdateTask batch to any
        executor yields the serial executor's outputs."""
        sim = build_flat(lr_decay=0.5, momentum=0.9)
        trainer = sim.protocol.trainer
        splits = [node.split for node in sim.nodes]
        serial = SerialExecutor(trainer, sim.layout, splits)
        other = make_other(trainer, sim.layout, splits)

        def make_tasks():
            return [
                UpdateTask(
                    i,
                    sim.arena.row(i).copy(),
                    np.random.default_rng(200 + i),
                    session=i % 3,
                )
                for i in range(sim.config.n_nodes)
            ]

        serial_results = serial.train_batch(make_tasks())
        other_results = other.train_batch(make_tasks())
        assert len(serial_results) == len(other_results)
        for (serial_vec, serial_rng), (other_vec, other_rng) in zip(
            serial_results, other_results
        ):
            np.testing.assert_array_equal(serial_vec, other_vec)
            assert serial_rng.random() == other_rng.random()
        serial.close()
        other.close()
        sim.close()

    @pytest.mark.parametrize(
        "executor,kwargs",
        [("batched", dict()), ("sharded", dict(n_shards=2))],
        ids=["batched", "sharded"],
    )
    def test_float32_arena_runs_match_serial(self, executor, kwargs):
        """On a float32 arena the blocked path trains in float32 like
        the (audited) serial path — results still agree."""
        serial = build_flat(arena_dtype="float32", seed=9)
        serial.run(2)
        serial.close()
        other = build_flat(
            arena_dtype="float32", executor=executor, seed=9, **kwargs
        )
        other.run(2)
        other.close()
        assert other.arena.data.dtype == np.float32
        np.testing.assert_allclose(
            serial.arena.data, other.arena.data, rtol=1e-4, atol=1e-5
        )

    def test_sharded_executor_runs_dp_blocked(self):
        """DP-SGD inside a shard rides the vectorized per-sample path —
        bit-identical noise draws vs serial, zero per-row fallbacks."""
        from repro.privacy.dp import DPSGDConfig

        dp = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.3)
        serial = build_flat(dp=dp, seed=7)
        serial.run(2)
        serial.close()
        sharded = build_flat(dp=dp, executor="sharded", n_shards=2, seed=7)
        sharded.run(2)
        counts = sharded.fallback_counts()
        sharded.close()
        assert np.array_equal(serial.arena.data, sharded.arena.data)
        assert counts == {}

    @pytest.mark.parametrize("executor", ["batched", "sharded"])
    @pytest.mark.parametrize("dp", [False, True], ids=["plain", "dp"])
    @pytest.mark.parametrize("dropout", [0.0, 0.3], ids=["nodrop", "drop"])
    def test_fast_path_matrix_float64(self, executor, dp, dropout):
        """Every core scenario (dp x dropout x executor) runs on the
        fast path: bit-identical to the serial reference in float64,
        with zero per-row fallbacks."""
        from repro.privacy.dp import DPSGDConfig

        dp_config = (
            DPSGDConfig(clip_norm=1.0, noise_multiplier=0.3) if dp else None
        )
        serial = build_flat(dp=dp_config, dropout=dropout, seed=11)
        serial.run(2)
        serial.close()
        kwargs = {"n_shards": 2} if executor == "sharded" else {}
        other = build_flat(
            dp=dp_config, dropout=dropout, executor=executor, seed=11,
            **kwargs,
        )
        other.run(2)
        counts = other.fallback_counts()
        other.close()
        assert counts == {}
        assert np.array_equal(serial.arena.data, other.arena.data)

    @pytest.mark.parametrize("executor", ["batched", "sharded"])
    def test_fast_path_matrix_float32(self, executor):
        """DP + dropout on a float32 arena drifts only within the
        associativity gate vs the float32 serial reference."""
        from repro.privacy.dp import DPSGDConfig

        dp_config = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.3)
        serial = build_flat(
            dp=dp_config, dropout=0.3, arena_dtype="float32", seed=11
        )
        serial.run(2)
        serial.close()
        kwargs = {"n_shards": 2} if executor == "sharded" else {}
        other = build_flat(
            dp=dp_config, dropout=0.3, executor=executor,
            arena_dtype="float32", seed=11, **kwargs,
        )
        other.run(2)
        other.close()
        assert other.arena.data.dtype == np.float32
        np.testing.assert_allclose(
            serial.arena.data, other.arena.data, rtol=1e-4, atol=1e-5
        )

    @pytest.mark.parametrize(
        "executor", ["serial", "batched", "process", "sharded"]
    )
    def test_set_trainer_config_reaches_live_executor(self, executor):
        """A mid-run config swap through the simulator must reach the
        live executor (blocked trainer, process pool, shard workers) —
        training after the swap matches serial bit for bit."""
        from dataclasses import replace

        def run(ex):
            extra = {}
            if ex == "sharded":
                extra["n_shards"] = 2
            elif ex == "process":
                extra["n_workers"] = 2
            sim = build_flat(executor=ex, seed=3, **extra)
            sim.run(1)
            sim.set_trainer_config(
                replace(
                    sim.protocol.trainer.config,
                    learning_rate=0.005,
                    lr_decay=0.9,
                )
            )
            sim.run(1)
            data = sim.arena.data.copy()
            sim.close()
            return data

        reference = run("serial")
        np.testing.assert_array_equal(reference, run(executor))

    def test_set_trainer_config_rejects_non_config(self):
        sim = build_flat()
        try:
            with pytest.raises(TypeError):
                sim.set_trainer_config({"learning_rate": 0.1})
        finally:
            sim.close()

    def test_dict_engine_set_trainer_config_and_fallbacks(self):
        sim = build_flat(engine="dict")
        try:
            from dataclasses import replace

            new = replace(sim.protocol.trainer.config, learning_rate=0.005)
            sim.set_trainer_config(new)
            assert sim.protocol.trainer.config.learning_rate == 0.005
            assert sim.fallback_counts() == {}
        finally:
            sim.close()

    def test_sharded_executor_requires_model_builder(self):
        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, local_epochs=1, batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, engine="flat", executor="sharded",
            wake_mu=5, wake_sigma=1, seed=0,
        )
        sim = make_simulator(
            config, make_protocol("samo", trainer), splits, get_state(model)
        )
        try:
            with pytest.raises(ValueError, match="model_builder"):
                sim.run(1)
        finally:
            sim.close()

    def test_batched_executor_runs_dp_blocked(self):
        """DP-SGD now has a blocked path: the batched executor trains
        every task through the vectorized per-sample-gradient kernels
        and still matches the serial executor bit for bit (same noise
        draws, same clip folds)."""
        from repro.privacy.dp import DPSGDConfig

        dp = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.3)
        serial = build_flat(dp=dp, seed=7)
        serial.run(2)
        serial.close()
        batched = build_flat(dp=dp, executor="batched", seed=7)
        batched.run(2)
        executor = batched.executor()  # before close() drops it
        counts = batched.fallback_counts()
        batched.close()
        assert np.array_equal(serial.arena.data, batched.arena.data)
        # The blocked trainer did the work; nothing fell back per row.
        assert executor.batched.steps_taken > 0
        assert counts == {}
        assert sum(n.updates_performed for n in batched.nodes) > 0

    def test_stream_dropout_trains_blocked(self):
        """Stream-mode dropout (the default) batches: masks come from
        counter-based streams keyed by (node, session, step), so the
        blocked path draws exactly the serial masks — bit-identity, no
        fallback."""
        dropout_builder = partial(build_mlp, 16, 4, hidden=(8,), dropout=0.3)

        def build(executor):
            model = dropout_builder(rng=np.random.default_rng(0))
            trainer = LocalTrainer(
                model,
                TrainerConfig(learning_rate=0.05, local_epochs=1,
                              batch_size=8),
            )
            train, _ = make_synthetic_tabular_dataset(
                "t", 300, 30, num_features=16, num_classes=4, seed=0
            )
            splits = make_node_splits(
                train, 6, train_per_node=16, test_per_node=8, seed=0
            )
            config = SimulatorConfig(
                n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
                wake_sigma=2, executor=executor, n_shards=2, seed=0,
            )
            return make_simulator(
                config, make_protocol("samo", trainer), splits,
                get_state(model), model_builder=dropout_builder,
            )

        serial = build("serial")
        serial.run(2)
        serial.close()
        for other_name in ("batched", "sharded"):
            other = build(other_name)
            other.run(2)
            counts = other.fallback_counts()
            other.close()
            assert counts == {}, other_name
            assert np.array_equal(serial.arena.data, other.arena.data), (
                other_name
            )

    def test_unsupported_architecture_falls_back_per_row(self):
        """A model without a batched backward (legacy-mode stochastic
        dropout) must construct and run on the per-row fallback,
        matching serial — not crash at executor construction."""
        dropout_builder = partial(
            build_mlp, 16, 4, hidden=(8,), dropout=0.3,
            dropout_mode="legacy",
        )

        def build(executor):
            model = dropout_builder(rng=np.random.default_rng(0))
            trainer = LocalTrainer(
                model,
                TrainerConfig(learning_rate=0.05, local_epochs=1,
                              batch_size=8),
            )
            train, _ = make_synthetic_tabular_dataset(
                "t", 300, 30, num_features=16, num_classes=4, seed=0
            )
            splits = make_node_splits(
                train, 6, train_per_node=16, test_per_node=8, seed=0
            )
            config = SimulatorConfig(
                n_nodes=6, view_size=2, ticks_per_round=20, wake_mu=20,
                wake_sigma=2, executor=executor, seed=0,
            )
            return make_simulator(
                config, make_protocol("samo", trainer), splits,
                get_state(model), model_builder=dropout_builder,
            )

        serial = build("serial")
        serial.run(2)
        serial.close()
        batched = build("batched")
        batched.run(2)
        executor = batched.executor()
        counts = batched.fallback_counts()
        batched.close()
        assert executor.batched is None  # no blocked trainer built
        assert np.array_equal(serial.arena.data, batched.arena.data)
        # Every trained row was tallied under the model-shape reason.
        assert set(counts) == {"no_batched_backward"}
        assert counts["no_batched_backward"] > 0

    def test_process_executor_requires_model_builder(self):
        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=1,
                          batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, engine="flat", executor="process",
            wake_mu=5, wake_sigma=1, seed=0,
        )
        sim = make_simulator(
            config, make_protocol("samo", trainer), splits, get_state(model)
        )
        with pytest.raises(ValueError, match="model_builder"):
            sim.run(1)


class TestSimulatorLifecycle:
    """Idempotent close and context-manager support (satellite of the
    sharding PR): pools and segments are released exactly once, even
    when a run raises."""

    def test_close_is_idempotent(self):
        sim = build_flat()
        sim.run(1)
        sim.close()
        sim.close()

    def test_context_manager_closes_on_success(self):
        with build_flat() as sim:
            sim.run(1)
            assert sim._executor is not None
        assert sim._executor is None

    def test_context_manager_closes_on_exception(self):
        with pytest.raises(RuntimeError, match="mid-run"):
            with build_flat() as sim:
                sim.run(1)
                assert sim._executor is not None
                raise RuntimeError("mid-run")
        assert sim._executor is None

    def test_dict_engine_context_manager_is_noop(self):
        with build_flat(engine="dict") as sim:
            sim.run(1)
        assert sim.messages_sent > 0

    def test_process_executor_close_idempotent_and_final(self):
        sim = build_flat(executor="process", n_workers=2)
        sim.run(1)
        executor = sim.executor()
        sim.close()
        executor.close()  # second close: no-op
        with pytest.raises(RuntimeError, match="closed"):
            executor.train_batch([])

    def test_sharded_executor_registered(self):
        from repro.gossip import ShardedExecutor

        with build_flat(executor="sharded", n_shards=2) as sim:
            sim.run(1)
            executor = sim.executor()
            assert isinstance(executor, ShardedExecutor)
            assert executor.name == "sharded"
            assert executor.n_shards == 2


class TestMessageLogPayloads:
    def test_payloads_kept_only_on_request(self):
        sim = build_flat()
        sim.run(1)
        assert sim.log.messages == []  # default: counters only

    def test_keep_payloads_records_snapshot_dicts(self):
        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=0,
                          batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, ticks_per_round=10, wake_mu=10,
            wake_sigma=1, engine="flat", seed=0,
        )
        sim = make_simulator(
            config, make_protocol("samo", trainer), splits,
            get_state(model), keep_payloads=True,
            model_builder=MODEL_BUILDER,
        )
        sim.run(1)
        assert sim.log.messages
        message = sim.log.messages[0]
        assert set(message.payload) == set(sim.layout.names)
        assert message.payload_size == sim.layout.dim


class TestEngineDefault:
    """PR 2 flipped the default engine from "dict" to "flat"."""

    def test_simulator_config_defaults_to_flat(self):
        assert SimulatorConfig().engine == "flat"

    def test_study_config_defaults_to_flat(self):
        from repro.core import StudyConfig

        assert StudyConfig().engine == "flat"

    def test_make_simulator_defaults_to_flat(self):
        sim = build_flat()
        assert isinstance(sim, FlatGossipSimulator)

    def test_dict_engine_still_runs_behind_flag(self):
        sim = build_flat(engine="dict")
        assert type(sim) is GossipSimulator
        sim.run(1)
        assert sim.messages_sent > 0


class TestSessionFlowsThroughTask:
    """lr_decay sessions are engine bookkeeping, never per-trainer state:
    the task carries the session index so every executor (serial
    workspace, process-pool workers, the batched trainer) sees the same
    learning rate for the same update."""

    def test_update_task_requires_explicit_session(self):
        with pytest.raises(ValueError, match="session"):
            UpdateTask(0, np.zeros(4), np.random.default_rng(0), session=None)

    def test_worker_trainers_reproduce_shared_trainer_sessions(self):
        """Regression for per-trainer ``_sessions`` divergence: two
        stateless worker trainers fed engine sessions must reproduce
        what one shared trainer's node_id bookkeeping computes — the
        failure mode being each worker starting its own count at 0."""
        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        config = TrainerConfig(
            learning_rate=0.1, momentum=0.0, local_epochs=1, batch_size=8,
            lr_decay=0.5,
        )
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, 16))
        y = rng.integers(0, 4, size=16)
        state = get_state(model)
        shared = LocalTrainer(model, config)
        expected = state
        for _ in range(2):  # node 3 trains twice on the shared trainer
            expected = shared.train(
                expected, x, y, np.random.default_rng(4), node_id=3
            )
        # Engine-style: each update may land on a DIFFERENT worker
        # trainer; the session index travels with the task.
        out = state
        for session in range(2):
            worker = LocalTrainer(
                MODEL_BUILDER(rng=np.random.default_rng(0)), config
            )
            out = worker.train(
                out, x, y, np.random.default_rng(4), session=session
            )
            assert worker._sessions == {}  # explicit session: no bookkeeping
        np.testing.assert_array_equal(
            state_to_vector(expected), state_to_vector(out)
        )

    def test_engine_sessions_survive_executor_choice(self):
        """The engine's session counters are identical across executors
        (covered broadly by TestExecutorContract; this pins the counter
        values themselves under lr_decay)."""
        serial = build_flat(lr_decay=0.5, seed=11)
        serial.run(3)
        serial.close()
        batched = build_flat(lr_decay=0.5, executor="batched", seed=11)
        batched.run(3)
        batched.close()
        assert serial._sessions == batched._sessions
        assert any(s > 0 for s in serial._sessions)


class TestDtypeDrift:
    """Fixed-seed float32-vs-float64 training drift stays bounded (the
    ROADMAP audit item): same study, both arena dtypes."""

    def _final_arenas(self, executor):
        out = {}
        for dtype in ("float64", "float32"):
            sim = build_flat(
                executor=executor, arena_dtype=dtype, seed=13, momentum=0.9,
            )
            sim.run(3)
            sim.close()
            out[dtype] = sim.arena.data.astype(np.float64)
        return out

    @pytest.mark.parametrize("executor", ["serial", "batched"])
    def test_training_drift_bounded(self, executor):
        arenas = self._final_arenas(executor)
        scale = np.linalg.norm(arenas["float64"])
        drift = np.linalg.norm(arenas["float32"] - arenas["float64"])
        assert drift / scale < 1e-4, (
            f"float32 training drifted {drift / scale:.2e} relative to "
            f"float64 after 3 rounds (bound: 1e-4)"
        )

    def test_float32_training_stays_float32(self):
        """The dtype audit: no hidden float64 promotion anywhere on the
        float32 training path — after a run, the workspace model's
        parameters AND gradient buffers hold float32 (the serial trainer
        loads arena rows into the workspace; the gradient accumulators
        must follow)."""
        sim = build_flat(arena_dtype="float32", executor="serial", seed=13)
        sim.run(2)
        trainer = sim.protocol.trainer
        sim.close()
        assert sim.arena.data.dtype == np.float32
        for param in trainer.model.parameters():
            assert param.data.dtype == np.float32
            assert param.grad.dtype == np.float32


class TestStateMatrix:
    def test_flat_engine_exposes_arena_zero_copy(self):
        sim = build_flat()
        matrix = sim.state_matrix()
        assert np.shares_memory(matrix, sim.arena.data)
        # Read-only contract is enforced, not just documented.
        assert not matrix.flags.writeable
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_flat_engine_rejects_mismatched_layout(self):
        from repro.nn.flat import StateLayout

        sim = build_flat()
        wrong = StateLayout.from_state({"w": np.zeros(3)})
        with pytest.raises(ValueError, match="layout"):
            sim.state_matrix(wrong)

    def test_dict_engine_packs_states(self):
        from repro.nn.serialize import state_to_vector

        sim = build_flat(engine="dict")
        sim.run(1)
        matrix = sim.state_matrix()
        for node in sim.nodes:
            np.testing.assert_array_equal(
                matrix[node.node_id], state_to_vector(node.state)
            )

    def test_dtype_only_layout_difference_accepted(self):
        """A float32 workspace layout addresses rows identically, so it
        must not be rejected (only name/offset/shape mismatches are)."""
        from repro.nn.flat import StateLayout

        sim = build_flat()
        state32 = {
            k: np.asarray(v, dtype=np.float32)
            for k, v in sim.nodes[0].state.items()
        }
        layout32 = StateLayout.from_state(state32)
        assert layout32.compatible_with(sim.layout)
        assert np.shares_memory(sim.state_matrix(layout32), sim.arena.data)
