"""Tests for the flat-buffer execution engine."""

from functools import partial

import numpy as np
import pytest

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    FlatGossipSimulator,
    GossipSimulator,
    LocalTrainer,
    SimulatorConfig,
    StateArena,
    TrainerConfig,
    make_protocol,
    make_simulator,
)
from repro.nn import build_mlp, get_state
from repro.nn.flat import StateLayout
from repro.nn.serialize import state_to_vector

MODEL_BUILDER = partial(build_mlp, 16, 4, hidden=(8,))


def build_flat(
    protocol_name="samo",
    n_nodes=6,
    engine="flat",
    executor="serial",
    arena_dtype="float64",
    seed=0,
    lr_decay=1.0,
    max_updates=None,
    **config_kwargs,
):
    model = MODEL_BUILDER(rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(
            learning_rate=0.05,
            momentum=0.0,
            local_epochs=1,
            batch_size=8,
            lr_decay=lr_decay,
        ),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 300, 30, num_features=16, num_classes=4, seed=seed
    )
    splits = make_node_splits(
        train, n_nodes, train_per_node=16, test_per_node=8, seed=seed
    )
    protocol = make_protocol(protocol_name, trainer)
    protocol.max_updates_per_node = max_updates
    config = SimulatorConfig(
        n_nodes=n_nodes,
        view_size=2,
        ticks_per_round=20,
        wake_mu=20,
        wake_sigma=2,
        engine=engine,
        executor=executor,
        arena_dtype=arena_dtype,
        seed=seed,
        **config_kwargs,
    )
    return make_simulator(
        config,
        protocol,
        splits,
        get_state(model),
        model_builder=MODEL_BUILDER,
    )


class TestStateArena:
    def _arena(self, n_nodes=4, dtype=np.float64):
        state = get_state(MODEL_BUILDER(rng=np.random.default_rng(0)))
        layout = StateLayout.from_state(state)
        return StateArena(layout, n_nodes, dtype=dtype), state

    def test_load_and_view_round_trip(self):
        arena, state = self._arena()
        arena.load_state(2, state)
        view = arena.state_view(2)
        np.testing.assert_array_equal(
            state_to_vector(view), state_to_vector(state)
        )

    def test_views_are_live(self):
        arena, state = self._arena()
        arena.load_state(0, state)
        view = arena.state_view(0)
        arena.row(0)[:] = 7.0
        name = arena.layout.names[0]
        assert view[name].flat[0] == 7.0

    def test_average_rows_matches_numpy_mean(self):
        arena, _ = self._arena()
        rng = np.random.default_rng(3)
        arena.data[:] = rng.normal(size=arena.data.shape)
        avg = arena.average_rows([0, 1, 3])
        np.testing.assert_allclose(avg, arena.data[[0, 1, 3]].mean(axis=0))

    def test_average_rows_weighted(self):
        arena, _ = self._arena()
        arena.data[0] = 0.0
        arena.data[1] = 6.0
        avg = arena.average_rows([0, 1], weights=[2.0, 1.0])
        np.testing.assert_allclose(avg, np.full(arena.dim, 2.0))

    def test_average_rows_rejects_zero_weight_total(self):
        arena, _ = self._arena()
        with pytest.raises(ValueError):
            arena.average_rows([0, 1], weights=[1.0, -1.0])

    def test_merge_row_pairwise(self):
        arena, _ = self._arena()
        arena.data[0] = 1.0
        payload = np.full(arena.dim, 3.0)
        arena.merge_row(0, payload, weight=0.5)
        np.testing.assert_allclose(arena.row(0), np.full(arena.dim, 2.0))

    def test_float32_storage(self):
        arena, state = self._arena(dtype=np.float32)
        arena.load_state(0, state)
        assert arena.data.dtype == np.float32
        assert arena.state_view(0)[arena.layout.names[0]].dtype == np.float32


class TestMakeSimulator:
    def test_dict_engine_returns_legacy_simulator(self):
        sim = build_flat(engine="dict")
        assert type(sim) is GossipSimulator

    def test_flat_engine_returns_flat_simulator(self):
        sim = build_flat(engine="flat")
        assert isinstance(sim, FlatGossipSimulator)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, engine="gpu")
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, executor="thread")
        with pytest.raises(ValueError):
            SimulatorConfig(n_nodes=4, view_size=2, arena_dtype="float16")


class TestFlatSimulator:
    def test_nodes_share_initial_model(self):
        sim = build_flat()
        assert np.all(sim.arena.data == sim.arena.data[0])

    def test_node_state_is_arena_view(self):
        """The dict-State compat layer: node.state reads through to the
        arena, so attacks and metrics code see live models."""
        sim = build_flat()
        sim.arena.row(3)[:] = 42.0
        name = sim.layout.names[0]
        assert sim.nodes[3].state[name].flat[0] == 42.0
        # snapshot() still detaches.
        snap = sim.nodes[3].snapshot()
        sim.arena.row(3)[:] = 0.0
        assert snap[name].flat[0] == 42.0

    @pytest.mark.parametrize("protocol_name", ["samo", "base_gossip"])
    def test_run_trains_and_communicates(self, protocol_name):
        sim = build_flat(protocol_name)
        initial = sim.arena.data.copy()
        sim.run(3)
        sim.close()
        assert sim.messages_sent > 0
        assert sum(n.updates_performed for n in sim.nodes) > 0
        assert not np.array_equal(sim.arena.data, initial)
        assert np.isfinite(sim.arena.data).all()

    def test_states_snapshot_detached(self):
        sim = build_flat()
        sim.run(1)
        states = sim.states()
        before = state_to_vector(states[0]).copy()
        sim.arena.data[:] += 1.0
        np.testing.assert_array_equal(state_to_vector(states[0]), before)

    def test_update_cap_respected(self):
        sim = build_flat(max_updates=2)
        sim.run(5)
        assert all(n.updates_performed <= 2 for n in sim.nodes)

    def test_partial_merge_weight_honored(self):
        sim = build_flat("base_gossip_partial")
        assert sim._merge_weight == pytest.approx(0.25)
        sim.run(2)
        assert sim.messages_sent > 0

    def test_float32_arena_runs(self):
        sim = build_flat(arena_dtype="float32")
        sim.run(2)
        assert sim.arena.data.dtype == np.float32
        assert sim.states()[0][sim.layout.names[0]].dtype == np.float32
        assert np.isfinite(sim.arena.data).all()

    def test_message_drop_and_failure_injection(self):
        sim = build_flat(drop_prob=0.5, failure_prob=0.3, seed=2)
        sim.run(4)
        assert sim.messages_dropped > 0
        assert sim.wakes_skipped > 0

    def test_delayed_messages_tallied_at_end(self):
        sim = build_flat(delay_ticks=10_000)
        sim.run(2)
        assert sim.messages_undelivered == sim.messages_sent
        assert sim.messages_undelivered == sim.messages_in_flight

    def test_in_flight_payload_frozen_at_send_time(self):
        """Copy-on-enqueue holds on the flat path too: mutating the
        sender's row after a delayed send must not alter the payload."""
        sim = build_flat(delay_ticks=3)
        sim._send_vector(0, 1, sim.arena.row(0))
        frozen = sim._in_flight[0][4].copy()
        sim.arena.row(0)[:] += 99.0
        np.testing.assert_array_equal(sim._in_flight[0][4], frozen)

    def test_empty_split_node_skips_sessions(self):
        """A node without data still gossips (updates_performed grows)
        but its lr_decay session counter must not advance."""
        sim = build_flat(lr_decay=0.5)
        node = sim.nodes[1]
        empty_train = node.split.train.__class__(
            base=node.split.train.base, indices=node.split.train.indices[:0]
        )
        node.split = node.split.__class__(
            node_id=node.split.node_id, train=empty_train, test=node.split.test
        )
        sim.run(3)
        assert sim._sessions[1] == 0
        assert any(s > 0 for s in sim._sessions)

    def test_serial_executor_reuses_protocol_trainer(self):
        sim = build_flat()
        sim.run(1)
        assert sim.executor().trainer is sim.protocol.trainer

    def test_rejects_unknown_protocol(self):
        class FakeProtocol:
            name = "fake"
            trainer = None
            max_updates_per_node = None

        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, engine="flat", seed=0
        )
        with pytest.raises(ValueError, match="flat engine"):
            FlatGossipSimulator(config, FakeProtocol(), splits, get_state(model))


class TestExecutorParity:
    def test_process_executor_bit_identical_to_serial(self):
        """The acceptance property at unit scale: a process-pool run
        reproduces the serial run bit for bit."""
        serial = build_flat(executor="serial", seed=5)
        serial.run(2)
        serial.close()
        parallel = build_flat(executor="process", n_workers=2, seed=5)
        parallel.run(2)
        parallel.close()
        assert np.array_equal(serial.arena.data, parallel.arena.data)
        assert serial.messages_sent == parallel.messages_sent
        assert [n.updates_performed for n in serial.nodes] == [
            n.updates_performed for n in parallel.nodes
        ]

    def test_process_executor_requires_model_builder(self):
        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=1,
                          batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, engine="flat", executor="process",
            wake_mu=5, wake_sigma=1, seed=0,
        )
        sim = make_simulator(
            config, make_protocol("samo", trainer), splits, get_state(model)
        )
        with pytest.raises(ValueError, match="model_builder"):
            sim.run(1)


class TestMessageLogPayloads:
    def test_payloads_kept_only_on_request(self):
        sim = build_flat()
        sim.run(1)
        assert sim.log.messages == []  # default: counters only

    def test_keep_payloads_records_snapshot_dicts(self):
        model = MODEL_BUILDER(rng=np.random.default_rng(0))
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=0,
                          batch_size=8),
        )
        train, _ = make_synthetic_tabular_dataset(
            "t", 100, 20, num_features=16, num_classes=4, seed=0
        )
        splits = make_node_splits(
            train, 4, train_per_node=8, test_per_node=4, seed=0
        )
        config = SimulatorConfig(
            n_nodes=4, view_size=2, ticks_per_round=10, wake_mu=10,
            wake_sigma=1, engine="flat", seed=0,
        )
        sim = make_simulator(
            config, make_protocol("samo", trainer), splits,
            get_state(model), keep_payloads=True,
            model_builder=MODEL_BUILDER,
        )
        sim.run(1)
        assert sim.log.messages
        message = sim.log.messages[0]
        assert set(message.payload) == set(sim.layout.names)
        assert message.payload_size == sim.layout.dim


class TestEngineDefault:
    """PR 2 flipped the default engine from "dict" to "flat"."""

    def test_simulator_config_defaults_to_flat(self):
        assert SimulatorConfig().engine == "flat"

    def test_study_config_defaults_to_flat(self):
        from repro.core import StudyConfig

        assert StudyConfig().engine == "flat"

    def test_make_simulator_defaults_to_flat(self):
        sim = build_flat()
        assert isinstance(sim, FlatGossipSimulator)

    def test_dict_engine_still_runs_behind_flag(self):
        sim = build_flat(engine="dict")
        assert type(sim) is GossipSimulator
        sim.run(1)
        assert sim.messages_sent > 0


class TestStateMatrix:
    def test_flat_engine_exposes_arena_zero_copy(self):
        sim = build_flat()
        matrix = sim.state_matrix()
        assert np.shares_memory(matrix, sim.arena.data)
        # Read-only contract is enforced, not just documented.
        assert not matrix.flags.writeable
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_flat_engine_rejects_mismatched_layout(self):
        from repro.nn.flat import StateLayout

        sim = build_flat()
        wrong = StateLayout.from_state({"w": np.zeros(3)})
        with pytest.raises(ValueError, match="layout"):
            sim.state_matrix(wrong)

    def test_dict_engine_packs_states(self):
        from repro.nn.serialize import state_to_vector

        sim = build_flat(engine="dict")
        sim.run(1)
        matrix = sim.state_matrix()
        for node in sim.nodes:
            np.testing.assert_array_equal(
                matrix[node.node_id], state_to_vector(node.state)
            )

    def test_dtype_only_layout_difference_accepted(self):
        """A float32 workspace layout addresses rows identically, so it
        must not be rejected (only name/offset/shape mismatches are)."""
        from repro.nn.flat import StateLayout

        sim = build_flat()
        state32 = {
            k: np.asarray(v, dtype=np.float32)
            for k, v in sim.nodes[0].state.items()
        }
        layout32 = StateLayout.from_state(state32)
        assert layout32.compatible_with(sim.layout)
        assert np.shares_memory(sim.state_matrix(layout32), sim.arena.data)
