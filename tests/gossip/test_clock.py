"""Tests for the tick clock and wake schedules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st

from repro.gossip import TickClock, WakeSchedule


class TestWakeSchedule:
    def test_gaps_near_mu(self, rng):
        sched = WakeSchedule(500, rng, mu=100.0, sigma=10.0)
        assert sched.gaps.mean() == pytest.approx(100.0, rel=0.05)

    def test_gaps_at_least_min(self, rng):
        sched = WakeSchedule(100, rng, mu=2.0, sigma=5.0, min_gap=1)
        assert sched.gaps.min() >= 1

    def test_wakes_at_matches_waking_nodes(self, rng):
        sched = WakeSchedule(10, rng, mu=7.0, sigma=2.0)
        for tick in range(30):
            waking = set(sched.waking_nodes(tick))
            for node in range(10):
                assert (node in waking) == sched.wakes_at(node, tick)

    def test_each_node_wakes_periodically(self, rng):
        sched = WakeSchedule(5, rng, mu=10.0, sigma=0.0)
        for node in range(5):
            wakes = [t for t in range(50) if sched.wakes_at(node, t)]
            gaps = np.diff(wakes)
            assert np.all(gaps == sched.gaps[node])

    def test_no_wake_before_phase(self, rng):
        sched = WakeSchedule(20, rng, mu=50.0, sigma=5.0)
        for node in range(20):
            phase = sched.phases[node]
            for t in range(int(phase)):
                assert not sched.wakes_at(node, t)

    def test_expected_wakeups_per_round(self, rng):
        sched = WakeSchedule(100, rng, mu=100.0, sigma=0.0)
        assert sched.wakeups_per_round(100) == pytest.approx(100.0)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            WakeSchedule(0, rng)
        with pytest.raises(ValueError):
            WakeSchedule(5, rng, mu=0.0)
        with pytest.raises(ValueError):
            WakeSchedule(5, rng, sigma=-1.0)

    def test_paper_parameters(self, rng):
        """Section 3.1: mu = 100 ticks, sigma^2 = 100 (sigma = 10)."""
        sched = WakeSchedule(150, rng)  # defaults
        assert sched.gaps.std() == pytest.approx(10.0, rel=0.5)


class TestTickClock:
    def test_advance_counts(self):
        clock = TickClock(100)
        for _ in range(5):
            clock.advance()
        assert clock.tick == 5

    def test_round_index(self):
        clock = TickClock(10)
        assert clock.round_index == 0
        for _ in range(25):
            clock.advance()
        assert clock.round_index == 2

    def test_round_boundary(self):
        clock = TickClock(10)
        boundaries = []
        for _ in range(30):
            clock.advance()
            if clock.is_round_boundary():
                boundaries.append(clock.tick)
        assert boundaries == [10, 20, 30]

    def test_ticks_for_rounds(self):
        clock = TickClock(100)
        assert clock.ticks_for_rounds(3) == 300
        with pytest.raises(ValueError):
            clock.ticks_for_rounds(-1)

    def test_rejects_nonpositive_ticks_per_round(self):
        with pytest.raises(ValueError):
            TickClock(0)


class TestWakeScheduleProperties:
    def test_count_wakes_matches_enumeration(self, rng):
        from hypothesis import given
        sched = WakeSchedule(12, rng, mu=9.0, sigma=3.0)
        for node in range(12):
            for horizon in (0, 1, 7, 23, 50):
                explicit = sum(
                    1 for t in range(horizon) if sched.wakes_at(node, t)
                )
                assert sched.count_wakes(node, horizon) == explicit

    def test_count_wakes_monotone_in_horizon(self, rng):
        sched = WakeSchedule(5, rng, mu=10.0, sigma=2.0)
        for node in range(5):
            counts = [sched.count_wakes(node, h) for h in range(0, 60, 7)]
            assert all(b >= a for a, b in zip(counts, counts[1:]))


class TestWakeScheduleRandomizedConsistency:
    """count_wakes must agree with wakes_at for arbitrary schedules."""

    @given(
        st.integers(0, 2**31 - 1),
        st.floats(1.0, 200.0),
        st.floats(0.0, 50.0),
        st.integers(0, 400),
    )
    @hyp_settings(max_examples=40, deadline=None)
    def test_count_wakes_equals_wakes_at_enumeration(
        self, seed, mu, sigma, horizon
    ):
        rng = np.random.default_rng(seed)
        sched = WakeSchedule(4, rng, mu=mu, sigma=sigma)
        for node in range(4):
            explicit = sum(
                1 for t in range(horizon) if sched.wakes_at(node, t)
            )
            assert sched.count_wakes(node, horizon) == explicit

    @given(st.integers(0, 2**31 - 1), st.integers(1, 300))
    @hyp_settings(max_examples=25, deadline=None)
    def test_waking_nodes_consistent_with_wakes_at(self, seed, horizon):
        rng = np.random.default_rng(seed)
        sched = WakeSchedule(6, rng, mu=17.0, sigma=6.0)
        for t in range(0, horizon, max(1, horizon // 40)):
            waking = set(sched.waking_nodes(t))
            for node in range(6):
                assert (node in waking) == sched.wakes_at(node, t)
