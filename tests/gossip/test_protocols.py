"""Tests for Base Gossip (Algorithm 1) and SAMO (Algorithm 2)."""

import numpy as np
import pytest

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    BaseGossipProtocol,
    GossipNode,
    LocalTrainer,
    SAMOProtocol,
    TrainerConfig,
    make_protocol,
)
from repro.nn import build_mlp, get_state
from repro.nn.serialize import average_states, state_to_vector


@pytest.fixture
def env():
    """Model, trainer, and a couple of nodes with real data."""
    model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=1, batch_size=8),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 120, 20, num_features=16, num_classes=4, seed=0
    )
    splits = make_node_splits(train, 3, train_per_node=16, test_per_node=8, seed=0)
    init = get_state(model)
    nodes = [
        GossipNode(
            node_id=i,
            state={k: v.copy() for k, v in init.items()},
            split=splits[i],
            rng=np.random.default_rng(100 + i),
        )
        for i in range(3)
    ]
    return model, trainer, nodes, init


def collect_sends():
    sent = []

    def send(sender, receiver, payload):
        sent.append((sender, receiver, payload))

    return sent, send


class TestBaseGossip:
    def test_wake_sends_to_exactly_one_neighbor(self, env):
        _, trainer, nodes, _ = env
        protocol = BaseGossipProtocol(trainer)
        sent, send = collect_sends()
        protocol.on_wake(nodes[0], view={1, 2}, send=send)
        assert len(sent) == 1
        assert sent[0][0] == 0
        assert sent[0][1] in {1, 2}

    def test_wake_with_empty_view_sends_nothing(self, env):
        _, trainer, nodes, _ = env
        protocol = BaseGossipProtocol(trainer)
        sent, send = collect_sends()
        protocol.on_wake(nodes[0], view=set(), send=send)
        assert sent == []

    def test_receive_aggregates_pairwise_then_trains(self, env):
        _, trainer, nodes, init = env
        protocol = BaseGossipProtocol(trainer)
        incoming = {k: v + 2.0 for k, v in init.items()}
        node = nodes[0]
        before_updates = node.updates_performed
        protocol.on_receive(node, incoming)
        assert node.updates_performed == before_updates + 1
        # The state should be near the pairwise average (training then
        # perturbs it, but aggregation is exact before local steps).
        expected_avg = average_states([init, incoming])
        # After training it moved, but should be closer to the average
        # than to either endpoint by construction of one small step.
        d_avg = np.linalg.norm(
            state_to_vector(node.state) - state_to_vector(expected_avg)
        )
        d_init = np.linalg.norm(
            state_to_vector(node.state) - state_to_vector(init)
        )
        assert d_avg < d_init

    def test_receive_does_not_buffer(self, env):
        _, trainer, nodes, init = env
        protocol = BaseGossipProtocol(trainer)
        protocol.on_receive(nodes[0], dict(init))
        assert nodes[0].inbox == []

    def test_wake_does_not_train(self, env):
        """Algorithm 1 trains only on reception."""
        _, trainer, nodes, _ = env
        protocol = BaseGossipProtocol(trainer)
        sent, send = collect_sends()
        before = nodes[0].updates_performed
        protocol.on_wake(nodes[0], view={1}, send=send)
        assert nodes[0].updates_performed == before


class TestSAMO:
    def test_receive_only_buffers(self, env):
        _, trainer, nodes, init = env
        protocol = SAMOProtocol(trainer)
        before = state_to_vector(nodes[0].state).copy()
        protocol.on_receive(nodes[0], dict(init))
        assert len(nodes[0].inbox) == 1
        np.testing.assert_array_equal(state_to_vector(nodes[0].state), before)
        assert nodes[0].updates_performed == 0

    def test_wake_sends_to_all_neighbors(self, env):
        _, trainer, nodes, _ = env
        protocol = SAMOProtocol(trainer)
        sent, send = collect_sends()
        protocol.on_wake(nodes[0], view={1, 2}, send=send)
        assert sorted(receiver for _, receiver, _ in sent) == [1, 2]

    def test_wake_without_inbox_skips_merge_and_training(self, env):
        """Algorithm 2 line 3: only merge/train when |Theta_i| > 1."""
        _, trainer, nodes, _ = env
        protocol = SAMOProtocol(trainer)
        sent, send = collect_sends()
        before = state_to_vector(nodes[0].state).copy()
        protocol.on_wake(nodes[0], view={1}, send=send)
        np.testing.assert_array_equal(state_to_vector(nodes[0].state), before)
        assert nodes[0].updates_performed == 0
        assert len(sent) == 1  # still disseminates

    def test_wake_with_inbox_merges_all_then_trains(self, env):
        _, trainer, nodes, init = env
        protocol = SAMOProtocol(trainer)
        m1 = {k: v + 3.0 for k, v in init.items()}
        m2 = {k: v - 3.0 for k, v in init.items()}
        protocol.on_receive(nodes[0], m1)
        protocol.on_receive(nodes[0], m2)
        sent, send = collect_sends()
        protocol.on_wake(nodes[0], view={1}, send=send)
        assert nodes[0].updates_performed == 1
        assert nodes[0].inbox == []
        # Average of init, init+3, init-3 is init; state then trained a
        # little, so it should be near init.
        drift = np.linalg.norm(
            state_to_vector(nodes[0].state) - state_to_vector(init)
        )
        assert drift < np.linalg.norm(state_to_vector(m1) - state_to_vector(init))

    def test_sent_payload_is_snapshot(self, env):
        """Mutating the node after sending must not alter the payload."""
        _, trainer, nodes, _ = env
        protocol = SAMOProtocol(trainer)
        sent, send = collect_sends()
        protocol.on_wake(nodes[0], view={1}, send=send)
        payload = sent[0][2]
        before = state_to_vector(payload).copy()
        for arr in nodes[0].state.values():
            arr += 100.0
        np.testing.assert_array_equal(state_to_vector(payload), before)


class TestFactory:
    def test_known_names(self, env):
        _, trainer, _, _ = env
        assert isinstance(make_protocol("base_gossip", trainer), BaseGossipProtocol)
        assert isinstance(make_protocol("samo", trainer), SAMOProtocol)

    def test_unknown_name(self, env):
        _, trainer, _, _ = env
        with pytest.raises(ValueError):
            make_protocol("epidemic", trainer)
