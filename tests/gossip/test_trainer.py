"""Tests for local training, including DP-SGD behavior."""

import numpy as np
import pytest

from repro.gossip import LocalTrainer, TrainerConfig
from repro.nn import build_mlp, get_state
from repro.nn.serialize import state_to_vector
from repro.privacy import DPSGDConfig


def make_setup(dp=None, local_epochs=3, lr=0.1):
    model = build_mlp(8, 3, hidden=(16,), rng=np.random.default_rng(0))
    config = TrainerConfig(
        learning_rate=lr,
        momentum=0.9,
        weight_decay=5e-4,
        local_epochs=local_epochs,
        batch_size=8,
        dp=dp,
    )
    return model, LocalTrainer(model, config)


def make_data(n=24, rng_seed=1):
    rng = np.random.default_rng(rng_seed)
    x = rng.normal(size=(n, 8))
    y = rng.integers(0, 3, size=n)
    x[y == 0] += 1.0
    x[y == 2] -= 1.0
    return x, y


class TestTrainerConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TrainerConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainerConfig(local_epochs=-1)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)


class TestLocalTrainer:
    def test_training_changes_state(self, rng):
        model, trainer = make_setup()
        state = get_state(model)
        x, y = make_data()
        new_state = trainer.train(state, x, y, rng)
        assert not np.allclose(
            state_to_vector(state), state_to_vector(new_state)
        )

    def test_input_state_not_mutated(self, rng):
        model, trainer = make_setup()
        state = get_state(model)
        before = state_to_vector(state).copy()
        trainer.train(state, *make_data(), rng)
        np.testing.assert_array_equal(state_to_vector(state), before)

    def test_empty_data_is_noop(self, rng):
        model, trainer = make_setup()
        state = get_state(model)
        out = trainer.train(state, np.zeros((0, 8)), np.zeros(0, dtype=int), rng)
        np.testing.assert_array_equal(
            state_to_vector(out), state_to_vector(state)
        )

    def test_zero_epochs_is_noop(self, rng):
        model, trainer = make_setup(local_epochs=0)
        state = get_state(model)
        out = trainer.train(state, *make_data(), rng)
        np.testing.assert_array_equal(
            state_to_vector(out), state_to_vector(state)
        )

    def test_loss_decreases_over_sessions(self, rng):
        model, trainer = make_setup(local_epochs=5)
        from repro.nn import CrossEntropyLoss
        from repro.nn.serialize import set_state

        state = get_state(model)
        x, y = make_data()
        loss_fn = CrossEntropyLoss()
        set_state(model, state)
        before = loss_fn(model.forward(x), y)
        for _ in range(5):
            state = trainer.train(state, x, y, rng)
        set_state(model, state)
        after = loss_fn(model.forward(x), y)
        assert after < before

    def test_steps_counted(self, rng):
        model, trainer = make_setup(local_epochs=2)
        x, y = make_data(n=24)  # 3 batches of 8
        trainer.train(get_state(model), x, y, rng)
        assert trainer.steps_taken == 6

    def test_deterministic_given_rng(self):
        model, trainer = make_setup()
        state = get_state(model)
        x, y = make_data()
        a = trainer.train(state, x, y, np.random.default_rng(5))
        model2, trainer2 = make_setup()
        b = trainer2.train(state, x, y, np.random.default_rng(5))
        np.testing.assert_allclose(state_to_vector(a), state_to_vector(b))


class TestDPSGDTrainer:
    def test_dp_training_changes_state(self, rng):
        dp = DPSGDConfig(clip_norm=1.0, noise_multiplier=0.5)
        model, trainer = make_setup(dp=dp, local_epochs=1)
        state = get_state(model)
        out = trainer.train(state, *make_data(), rng)
        assert not np.allclose(
            state_to_vector(state), state_to_vector(out)
        )

    def test_zero_noise_dp_close_to_clipped_sgd(self):
        """With sigma=0 and a huge clip norm, DP-SGD matches plain SGD."""
        dp = DPSGDConfig(clip_norm=1e6, noise_multiplier=0.0)
        model, dp_trainer = make_setup(dp=dp, local_epochs=1, lr=0.05)
        state = get_state(model)
        x, y = make_data()
        dp_out = dp_trainer.train(state, x, y, np.random.default_rng(3))
        model2, plain_trainer = make_setup(dp=None, local_epochs=1, lr=0.05)
        plain_out = plain_trainer.train(state, x, y, np.random.default_rng(3))
        np.testing.assert_allclose(
            state_to_vector(dp_out), state_to_vector(plain_out), atol=1e-8
        )

    def test_more_noise_moves_further_from_noiseless(self):
        x, y = make_data()

        def run(sigma, seed=7):
            dp = DPSGDConfig(clip_norm=1.0, noise_multiplier=sigma)
            model, trainer = make_setup(dp=dp, local_epochs=1)
            state = get_state(model)
            out = trainer.train(state, x, y, np.random.default_rng(seed))
            return state_to_vector(out)

        clean = run(0.0)
        drift_small = np.linalg.norm(run(0.1) - clean)
        drift_large = np.linalg.norm(run(5.0) - clean)
        assert drift_large > drift_small


class TestEarlyOverfittingMitigations:
    def test_label_smoothing_changes_training(self, rng):
        x, y = make_data()
        model, plain = make_setup(local_epochs=1)
        state = get_state(model)
        a = plain.train(state, x, y, np.random.default_rng(3))
        model2, _ = make_setup(local_epochs=1)
        smoothed_trainer = LocalTrainer(
            model2,
            TrainerConfig(learning_rate=0.1, momentum=0.9, local_epochs=1,
                          batch_size=8, label_smoothing=0.2),
        )
        b = smoothed_trainer.train(state, x, y, np.random.default_rng(3))
        assert not np.allclose(state_to_vector(a), state_to_vector(b))

    def test_lr_decay_shrinks_later_sessions(self):
        """With lr_decay, the Nth session moves the model less than the
        first (measured from the same starting state)."""
        x, y = make_data()
        model, _ = make_setup()
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.1, momentum=0.0, local_epochs=1,
                          batch_size=8, lr_decay=0.5),
        )
        state = get_state(model)
        first = trainer.train(state, x, y, np.random.default_rng(5), node_id=0)
        drift_first = np.linalg.norm(
            state_to_vector(first) - state_to_vector(state)
        )
        # Burn sessions for node 0 so the decayed lr applies.
        for _ in range(3):
            trainer.train(state, x, y, np.random.default_rng(5), node_id=0)
        later = trainer.train(state, x, y, np.random.default_rng(5), node_id=0)
        drift_later = np.linalg.norm(
            state_to_vector(later) - state_to_vector(state)
        )
        assert drift_later < drift_first

    def test_lr_decay_is_per_node(self):
        x, y = make_data()
        model, _ = make_setup()
        trainer = LocalTrainer(
            model,
            TrainerConfig(learning_rate=0.1, momentum=0.0, local_epochs=1,
                          batch_size=8, lr_decay=0.5),
        )
        state = get_state(model)
        for _ in range(3):
            trainer.train(state, x, y, np.random.default_rng(5), node_id=0)
        # A fresh node still trains at full rate.
        fresh = trainer.train(state, x, y, np.random.default_rng(5), node_id=1)
        decayed = trainer.train(state, x, y, np.random.default_rng(5), node_id=0)
        drift_fresh = np.linalg.norm(
            state_to_vector(fresh) - state_to_vector(state)
        )
        drift_decayed = np.linalg.norm(
            state_to_vector(decayed) - state_to_vector(state)
        )
        assert drift_decayed < drift_fresh

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(label_smoothing=1.0)
        with pytest.raises(ValueError):
            TrainerConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            TrainerConfig(lr_decay=1.5)


class TestSessionBookkeeping:
    """lr_decay session counters, including the empty-split edge case."""

    def test_empty_split_does_not_advance_session(self):
        """A node with no local data never trains, so its lr_decay
        session counter must not advance (advancing would cool down
        the learning rate of training that never happened)."""
        model, trainer = make_setup()
        trainer.config = TrainerConfig(
            learning_rate=0.1, momentum=0.0, local_epochs=1,
            batch_size=8, lr_decay=0.5,
        )
        state = get_state(model)
        empty_x = np.zeros((0, 8))
        empty_y = np.zeros((0,), dtype=np.int64)
        rng = np.random.default_rng(0)
        out = trainer.train(state, empty_x, empty_y, rng, node_id=7)
        assert trainer._sessions.get(7, 0) == 0
        np.testing.assert_array_equal(
            state_to_vector(out), state_to_vector(state)
        )
        # A later real session starts at session 0 (full learning rate).
        x, y = make_data()
        trainer.train(state, x, y, rng, node_id=7)
        assert trainer._sessions[7] == 1

    def test_sessions_advance_per_node(self):
        model, trainer = make_setup(local_epochs=1)
        state = get_state(model)
        x, y = make_data()
        rng = np.random.default_rng(0)
        for _ in range(3):
            trainer.train(state, x, y, rng, node_id=0)
        trainer.train(state, x, y, rng, node_id=1)
        assert trainer._sessions == {0: 3, 1: 1}

    def test_explicit_session_bypasses_bookkeeping(self):
        """The flat engine passes sessions explicitly; the trainer's own
        counters must stay untouched so the two never fight."""
        model, trainer = make_setup(local_epochs=1)
        state = get_state(model)
        x, y = make_data()
        rng = np.random.default_rng(0)
        trainer.train(state, x, y, rng, node_id=4, session=2)
        assert trainer._sessions == {}

    def test_explicit_session_matches_bookkept_lr(self):
        """session=N reproduces the update the N+1-th bookkept call makes."""
        x, y = make_data()
        config = TrainerConfig(
            learning_rate=0.1, momentum=0.0, local_epochs=1,
            batch_size=8, lr_decay=0.5,
        )
        model_a = build_mlp(8, 3, hidden=(16,), rng=np.random.default_rng(0))
        trainer_a = LocalTrainer(model_a, config)
        state = get_state(model_a)
        out_a = state
        for _ in range(3):
            out_a = trainer_a.train(out_a, x, y, np.random.default_rng(9), node_id=0)
        model_b = build_mlp(8, 3, hidden=(16,), rng=np.random.default_rng(0))
        trainer_b = LocalTrainer(model_b, config)
        out_b = state
        for session in range(3):
            out_b = trainer_b.train(
                out_b, x, y, np.random.default_rng(9), session=session
            )
        np.testing.assert_array_equal(
            state_to_vector(out_a), state_to_vector(out_b)
        )


class TestFloat32Training:
    """The dtype audit at trainer level: a float32 state trains fully in
    float32 (inputs are cast down, loss/optimizer internals follow) and
    lands close to the float64 result."""

    def test_float32_state_trains_in_float32(self):
        model, trainer = make_setup(local_epochs=1)
        x, y = make_data()
        state64 = get_state(model)
        state32 = {k: v.astype(np.float32) for k, v in state64.items()}
        out32 = trainer.train(state32, x, y, np.random.default_rng(2))
        assert all(v.dtype == np.float32 for v in out32.values())
        # Gradient buffers were rebuilt in float32 alongside the data.
        for param in model.parameters():
            assert param.grad.dtype == np.float32

    def test_float32_drift_from_float64_is_bounded(self):
        model, trainer = make_setup(local_epochs=1)
        x, y = make_data()
        state64 = get_state(model)
        state32 = {k: v.astype(np.float32) for k, v in state64.items()}
        out64 = state_to_vector(
            trainer.train(state64, x, y, np.random.default_rng(2))
        )
        out32 = state_to_vector(
            trainer.train(state32, x, y, np.random.default_rng(2))
        ).astype(np.float64)
        drift = np.linalg.norm(out32 - out64) / np.linalg.norm(out64)
        assert drift < 1e-5
