"""Tests for message records and the observer log."""

import numpy as np

from repro.gossip import MessageLog, ModelMessage


def msg(sender=0, receiver=1, tick=5, size=4):
    return ModelMessage(
        sender=sender,
        receiver=receiver,
        tick=tick,
        payload={"w": np.zeros(size)},
    )


class TestModelMessage:
    def test_payload_size(self):
        m = ModelMessage(0, 1, 0, {"a": np.zeros((2, 3)), "b": np.zeros(4)})
        assert m.payload_size == 10

    def test_frozen(self):
        m = msg()
        try:
            m.sender = 9
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestMessageLog:
    def test_counts(self):
        log = MessageLog()
        for i in range(5):
            log.record(msg(sender=i % 2))
        assert log.count == 5
        assert log.sent_by(0) == 3
        assert log.sent_by(1) == 2
        assert log.sent_by(7) == 0

    def test_payloads_dropped_by_default(self):
        log = MessageLog()
        log.record(msg())
        assert log.messages == []

    def test_payloads_kept_when_requested(self):
        log = MessageLog(keep_payloads=True)
        log.record(msg())
        assert len(log.messages) == 1

    def test_models_sent_per_node(self):
        log = MessageLog()
        for _ in range(10):
            log.record(msg())
        assert log.models_sent_per_node(5) == 2.0

    def test_models_sent_rejects_bad_n(self):
        import pytest

        with pytest.raises(ValueError):
            MessageLog().models_sent_per_node(0)
